module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Semantics = Fppn.Semantics
module Trace = Fppn.Trace

let ms = Rat.of_int
let value = Alcotest.testable V.pp V.equal

(* Writer/reader pair over one channel; the reader copies to an output.
   Priority direction is a parameter so both orders can be tested. *)
let wr_pair ?(kind = Fppn.Channel.Blackboard) ~writer_first () =
  let b = Network.Builder.create "wr" in
  let add name body =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
         (Process.Native body))
  in
  add "W" (fun ctx -> ctx.Process.write "c" (V.Int ctx.Process.job_index));
  add "R" (fun ctx -> ctx.Process.write "o" (ctx.Process.read "c"));
  Network.Builder.add_channel b ~kind ~writer:"W" ~reader:"R" "c";
  if writer_first then Network.Builder.add_priority b "W" "R"
  else Network.Builder.add_priority b "R" "W";
  Network.Builder.add_output b ~owner:"R" "o";
  Network.Builder.finish_exn b

let run_horizon ?sporadic ?inputs net h =
  Semantics.run ?inputs net (Semantics.invocations ?sporadic ~horizon:(ms h) net)

let output res name = List.assoc name res.Semantics.output_history

let test_priority_orders_simultaneous_jobs () =
  (* W -> R: R sees the fresh value written in the same instant *)
  let res = run_horizon (wr_pair ~writer_first:true ()) 300 in
  Alcotest.(check (list value)) "reader after writer"
    [ V.Int 1; V.Int 2; V.Int 3 ] (output res "o");
  (* R -> W: R reads before W writes, so it lags one period *)
  let res' = run_horizon (wr_pair ~writer_first:false ()) 300 in
  Alcotest.(check (list value)) "reader before writer"
    [ V.Absent; V.Int 1; V.Int 2 ] (output res' "o")

let test_fifo_vs_blackboard_rates () =
  (* writer at 100 ms, reader at 200 ms: FIFO backlog vs blackboard last *)
  let make kind =
    let b = Network.Builder.create "rates" in
    Network.Builder.add_process b
      (Process.make ~name:"W"
         ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
         (Process.Native
            (fun ctx -> ctx.Process.write "c" (V.Int ctx.Process.job_index))));
    Network.Builder.add_process b
      (Process.make ~name:"R"
         ~event:(Event.periodic ~period:(ms 200) ~deadline:(ms 200) ())
         (Process.Native (fun ctx -> ctx.Process.write "o" (ctx.Process.read "c"))));
    Network.Builder.add_channel b ~kind ~writer:"W" ~reader:"R" "c";
    Network.Builder.add_priority b "W" "R";
    Network.Builder.add_output b ~owner:"R" "o";
    Network.Builder.finish_exn b
  in
  let fifo = run_horizon (make Fppn.Channel.Fifo) 600 in
  (* at t=0 W wrote 1; at t=200 reader pops head of backlog {2,3}; etc. *)
  Alcotest.(check (list value)) "fifo reads in order with backlog"
    [ V.Int 1; V.Int 2; V.Int 3 ] (output fifo "o");
  let bb = run_horizon (make Fppn.Channel.Blackboard) 600 in
  Alcotest.(check (list value)) "blackboard reads last value"
    [ V.Int 1; V.Int 3; V.Int 5 ] (output bb "o")

let test_trace_structure () =
  let res = run_horizon (wr_pair ~writer_first:true ()) 200 in
  let waits =
    List.filter_map
      (function Trace.Wait t -> Some t | _ -> None)
      res.Semantics.trace
  in
  Alcotest.(check (list (testable Rat.pp Rat.equal))) "wait stamps"
    [ ms 0; ms 100 ] waits;
  (* within each instant: W's job run completes before R's starts *)
  let rec check_order = function
    | Trace.Job_end { process = "W"; k } :: rest ->
      let rec find_r = function
        | Trace.Job_start { process = "R"; k = k' } :: _ ->
          Alcotest.(check int) "same instance index" k k'
        | _ :: tl -> find_r tl
        | [] -> Alcotest.fail "reader job missing"
      in
      find_r rest;
      check_order rest
    | _ :: rest -> check_order rest
    | [] -> ()
  in
  check_order res.Semantics.trace;
  Alcotest.(check int) "job count W" 2 (Trace.job_count res.Semantics.trace "W");
  Alcotest.(check (list value)) "writes_to extracts channel writes"
    [ V.Int 1; V.Int 2 ]
    (Trace.writes_to res.Semantics.trace "c")

let test_burst_execution () =
  let b = Network.Builder.create "burst" in
  Network.Builder.add_process b
    (Process.make ~name:"B2"
       ~event:(Event.periodic ~burst:2 ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun ctx -> ctx.Process.write "o" (V.Int ctx.Process.job_index))));
  Network.Builder.add_output b ~owner:"B2" "o";
  let net = Network.Builder.finish_exn b in
  let res = run_horizon net 200 in
  Alcotest.(check (list value)) "burst jobs run consecutively with distinct k"
    [ V.Int 1; V.Int 2; V.Int 3; V.Int 4 ] (output res "o")

let test_sporadic_invocations () =
  let b = Network.Builder.create "sp" in
  Network.Builder.add_process b
    (Process.make ~name:"P"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun _ -> ())));
  Network.Builder.add_process b
    (Process.make ~name:"S"
       ~event:(Event.sporadic ~min_period:(ms 50) ~deadline:(ms 100) ())
       (Process.Native (fun ctx -> ctx.Process.write "o" (V.Int ctx.Process.job_index))));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S" ~reader:"P" "cfg";
  Network.Builder.add_priority b "S" "P";
  Network.Builder.add_output b ~owner:"S" "o";
  let net = Network.Builder.finish_exn b in
  let res = run_horizon ~sporadic:[ ("S", [ ms 10; ms 130 ]) ] net 200 in
  Alcotest.(check (list value)) "sporadic executed at its stamps"
    [ V.Int 1; V.Int 2 ] (output res "o");
  Alcotest.(check (list (pair string int))) "job counts"
    [ ("P", 2); ("S", 2) ]
    res.Semantics.job_counts

let test_sporadic_validation () =
  let net = wr_pair ~writer_first:true () in
  Alcotest.(check bool) "unknown process rejected" true
    (try
       ignore (Semantics.invocations ~sporadic:[ ("X", []) ] ~horizon:(ms 100) net);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "periodic process rejected in sporadic list" true
    (try
       ignore (Semantics.invocations ~sporadic:[ ("W", []) ] ~horizon:(ms 100) net);
       false
     with Invalid_argument _ -> true)

let test_determinism_repeated_runs () =
  let net = Fppn_apps.Fig1.network () in
  let inputs = Fppn_apps.Fig1.input_feed ~samples:16 in
  let sporadic = [ ("CoefB", [ ms 50; ms 200 ]) ] in
  let run () =
    Semantics.run ~inputs net
      (Semantics.invocations ~sporadic ~horizon:(ms 800) net)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical signatures on repeated runs" true
    (Semantics.equal_signature a b);
  (* the signature covers both internal channels and outputs *)
  Alcotest.(check bool) "signature non-trivial" true
    (List.length (Semantics.signature a) >= 9)

let test_inputs_feed () =
  let feed = Semantics.feed_of_list [ ("in", [ V.Int 10; V.Int 20 ]) ] in
  Alcotest.check value "sample 1" (V.Int 10) (feed "in" 1);
  Alcotest.check value "sample 2" (V.Int 20) (feed "in" 2);
  Alcotest.check value "exhausted" V.Absent (feed "in" 3);
  Alcotest.check value "unknown channel" V.Absent (feed "zzz" 1);
  Alcotest.check value "no_inputs" V.Absent (Semantics.no_inputs "in" 1)

let () =
  Alcotest.run "semantics"
    [
      ( "zero-delay",
        [
          Alcotest.test_case "priority orders simultaneous jobs" `Quick
            test_priority_orders_simultaneous_jobs;
          Alcotest.test_case "fifo vs blackboard" `Quick test_fifo_vs_blackboard_rates;
          Alcotest.test_case "trace structure" `Quick test_trace_structure;
          Alcotest.test_case "burst execution" `Quick test_burst_execution;
        ] );
      ( "sporadic",
        [
          Alcotest.test_case "invocations" `Quick test_sporadic_invocations;
          Alcotest.test_case "validation" `Quick test_sporadic_validation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "repeated runs" `Quick test_determinism_repeated_runs;
          Alcotest.test_case "input feeds" `Quick test_inputs_feed;
        ] );
    ]
