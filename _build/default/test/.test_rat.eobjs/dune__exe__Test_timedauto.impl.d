test/test_timedauto.ml: Alcotest Fppn Fppn_apps List Rt_util Runtime Sched String Taskgraph Timedauto
