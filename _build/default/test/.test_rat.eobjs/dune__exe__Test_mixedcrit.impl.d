test/test_mixedcrit.ml: Alcotest Array Format Fppn List Mixedcrit Option Printf Rt_util Runtime Taskgraph
