test/test_extensions.ml: Alcotest Array Filename Format Fppn Fppn_apps Fppn_verify Fun List Printf QCheck2 QCheck_alcotest Rt_util Runtime Sched String Sys Taskgraph
