test/test_channel_event.mli:
