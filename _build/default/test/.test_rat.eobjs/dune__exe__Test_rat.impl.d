test/test_rat.ml: Alcotest List QCheck2 QCheck_alcotest Rt_util Stdlib
