test/test_timedauto.mli:
