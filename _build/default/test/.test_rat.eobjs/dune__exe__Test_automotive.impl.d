test/test_automotive.ml: Alcotest Array Format Fppn Fppn_apps Hashtbl List Option Printf Rt_util Runtime Sched String Taskgraph
