test/test_components.ml: Alcotest Format Fppn Fppn_apps Fun List QCheck2 QCheck_alcotest Rt_util Runtime Sched String Taskgraph
