test/test_lang.ml: Alcotest Char Filename Format Fppn Fppn_lang List Printf QCheck2 QCheck_alcotest Rt_util Runtime Sched String Sys Taskgraph
