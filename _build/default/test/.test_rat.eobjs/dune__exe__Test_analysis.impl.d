test/test_analysis.ml: Alcotest Array Fppn_apps List Printf Rt_util Taskgraph
