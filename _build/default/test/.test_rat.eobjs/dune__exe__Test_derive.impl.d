test/test_derive.ml: Alcotest Array Fppn Fppn_apps Fun List QCheck2 QCheck_alcotest Rt_util String Taskgraph
