test/test_mixedcrit.mli:
