test/test_automotive.mli:
