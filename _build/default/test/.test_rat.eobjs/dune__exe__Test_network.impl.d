test/test_network.ml: Alcotest Array Format Fppn Fppn_apps List Printf Rt_util String
