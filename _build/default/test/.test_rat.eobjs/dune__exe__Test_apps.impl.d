test/test_apps.ml: Alcotest Array Float Fppn Fppn_apps List Printf QCheck2 QCheck_alcotest Rt_util Sched Taskgraph
