test/test_util.ml: Alcotest Array Fun Int List QCheck2 QCheck_alcotest Rt_util Set String
