test/test_semantics.ml: Alcotest Fppn Fppn_apps List Rt_util
