test/test_runtime.ml: Alcotest Fppn Fppn_apps Hashtbl List Printf Rt_util Runtime Sched String Taskgraph
