test/test_automaton.ml: Alcotest Fppn Hashtbl List Rt_util
