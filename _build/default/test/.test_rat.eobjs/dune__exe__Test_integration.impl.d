test/test_integration.ml: Alcotest Array Float Fppn Fppn_apps List Option Printf QCheck2 QCheck_alcotest Rt_util Runtime Sched String Taskgraph Timedauto
