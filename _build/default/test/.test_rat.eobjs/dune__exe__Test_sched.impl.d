test/test_sched.ml: Alcotest Array Format Fppn_apps List Option Printf QCheck2 QCheck_alcotest Rt_util Sched Taskgraph
