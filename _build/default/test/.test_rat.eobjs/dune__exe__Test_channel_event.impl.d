test/test_channel_event.ml: Alcotest Format Fppn List QCheck2 QCheck_alcotest Rt_util String
