module Rat = Rt_util.Rat
module Digraph = Rt_util.Digraph
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Analysis = Taskgraph.Analysis

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal

(* Hand-built graph:
     J0 (A=0,  D=100, C=30) --\
                               +--> J2 (A=0, D=100, C=40)
     J1 (A=0,  D=60,  C=20) --/
     J3 (A=100, D=200, C=50)   (independent)            *)
let sample () =
  let mk id name a d c =
    {
      Job.id;
      proc = id;
      proc_name = name;
      k = 1;
      arrival = ms a;
      deadline = ms d;
      wcet = ms c;
      is_server = false;
    }
  in
  let jobs =
    [| mk 0 "J0" 0 100 30; mk 1 "J1" 0 60 20; mk 2 "J2" 0 100 40; mk 3 "J3" 100 200 50 |]
  in
  let dag = Digraph.create 4 in
  Digraph.add_edge dag 0 2;
  Digraph.add_edge dag 1 2;
  Graph.make jobs dag

let test_asap_alap () =
  let g = sample () in
  let t = Analysis.asap_alap g in
  Alcotest.check rat "J0 asap" (ms 0) t.Analysis.asap.(0);
  Alcotest.check rat "J2 asap = max pred chain" (ms 30) t.Analysis.asap.(2);
  Alcotest.check rat "J3 asap = its arrival" (ms 100) t.Analysis.asap.(3);
  Alcotest.check rat "J2 alap = own deadline" (ms 100) t.Analysis.alap.(2);
  Alcotest.check rat "J0 alap tightened by J2" (ms 60) t.Analysis.alap.(0);
  Alcotest.check rat "J1 alap = min(own D, J2 slack)" (ms 60) t.Analysis.alap.(1)

let test_load () =
  let g = sample () in
  let l = Analysis.load g in
  (* window [0,100] holds J0+J1+J2 = 90ms -> 0.9; check it's the max *)
  Alcotest.check rat "load value" (Rat.make 9 10) l.Analysis.value;
  let t1, t2 = l.Analysis.window in
  Alcotest.check rat "window start" (ms 0) t1;
  Alcotest.check rat "window end" (ms 100) t2

let test_load_empty () =
  let g = Graph.make [||] (Digraph.create 0) in
  ignore g;
  (* empty arrays are rejected by Static_schedule but Graph accepts them *)
  let l = Analysis.load g in
  Alcotest.check rat "empty load" Rat.zero l.Analysis.value

let test_necessary_condition () =
  let g = sample () in
  (match Analysis.necessary_condition g ~processors:1 with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "unexpected violations: %d (load %s)" (List.length vs)
      (Rat.to_string (Analysis.load g).Analysis.value));
  (* an infeasible job: C bigger than its window *)
  let bad =
    let mk id a d c =
      {
        Job.id;
        proc = id;
        proc_name = "X";
        k = 1;
        arrival = ms a;
        deadline = ms d;
        wcet = ms c;
        is_server = false;
      }
    in
    Graph.make [| mk 0 0 50 80 |] (Digraph.create 1)
  in
  match Analysis.necessary_condition bad ~processors:4 with
  | Ok () -> Alcotest.fail "expected Job_infeasible"
  | Error vs ->
    Alcotest.(check bool) "job infeasible reported" true
      (List.exists (function Analysis.Job_infeasible 0 -> true | _ -> false) vs)

let test_load_exceeds () =
  (* two independent jobs each filling [0,100] completely: load = 2 *)
  let mk id a d c =
    {
      Job.id;
      proc = id;
      proc_name = Printf.sprintf "P%d" id;
      k = 1;
      arrival = ms a;
      deadline = ms d;
      wcet = ms c;
      is_server = false;
    }
  in
  let g = Graph.make [| mk 0 0 100 100; mk 1 0 100 100 |] (Digraph.create 2) in
  Alcotest.check rat "load 2" (ms 2) (Analysis.load g).Analysis.value;
  (match Analysis.necessary_condition g ~processors:1 with
  | Error vs ->
    Alcotest.(check bool) "load violation on M=1" true
      (List.exists (function Analysis.Load_exceeds _ -> true | _ -> false) vs)
  | Ok () -> Alcotest.fail "expected Load_exceeds");
  match Analysis.necessary_condition g ~processors:2 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "M=2 satisfies the necessary condition"

let test_b_level_critical_path () =
  let g = sample () in
  let bl = Analysis.b_level g in
  Alcotest.check rat "sink b-level = own wcet" (ms 40) bl.(2);
  Alcotest.check rat "J0 b-level = 30+40" (ms 70) bl.(0);
  Alcotest.check rat "J3 b-level standalone" (ms 50) bl.(3);
  let len, path = Analysis.critical_path g in
  Alcotest.check rat "critical path length" (ms 70) len;
  Alcotest.(check (list int)) "critical path" [ 0; 2 ] path

let test_fft_load_matches_paper () =
  (* Sec. V-A: 14 jobs, C=13.3 ms -> load 0.93 *)
  let p = Fppn_apps.Fft.default_params in
  let d = Taskgraph.Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map p) (Fppn_apps.Fft.network p) in
  let l = Taskgraph.Analysis.load d.Taskgraph.Derive.graph in
  let v = Rat.to_float l.Analysis.value in
  Alcotest.(check bool) "load = 0.931" true (v > 0.92 && v < 0.94)

let test_fft_overhead_load_matches_paper () =
  (* with the 41 ms overhead job the load exceeds 1 (paper: ~1.2) *)
  let p = Fppn_apps.Fft.default_params in
  let net = Fppn_apps.Fft.network_with_overhead_job p in
  let wcet = Fppn_apps.Fft.wcet_map_with_overhead p ~overhead:(ms 41) in
  let d = Taskgraph.Derive.derive_exn ~wcet net in
  let l = Taskgraph.Analysis.load d.Taskgraph.Derive.graph in
  let v = Rat.to_float l.Analysis.value in
  Alcotest.(check bool) "load > 1" true (v > 1.0);
  Alcotest.(check bool) "load in the paper's ballpark (~1.1-1.2)" true (v < 1.3);
  (* Prop. 3.1: single processor is necessarily infeasible *)
  match Taskgraph.Analysis.necessary_condition d.Taskgraph.Derive.graph ~processors:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected the necessary condition to fail on M=1"

let () =
  Alcotest.run "analysis"
    [
      ( "asap-alap",
        [
          Alcotest.test_case "recursive times" `Quick test_asap_alap;
          Alcotest.test_case "b-level / critical path" `Quick test_b_level_critical_path;
        ] );
      ( "load",
        [
          Alcotest.test_case "hand computation" `Quick test_load;
          Alcotest.test_case "empty graph" `Quick test_load_empty;
          Alcotest.test_case "necessary condition" `Quick test_necessary_condition;
          Alcotest.test_case "load exceeds processors" `Quick test_load_exceeds;
        ] );
      ( "paper",
        [
          Alcotest.test_case "fft load 0.93" `Quick test_fft_load_matches_paper;
          Alcotest.test_case "fft overhead load >1" `Quick
            test_fft_overhead_load_matches_paper;
        ] );
    ]
