module Rat = Rt_util.Rat
module V = Fppn.Value
module Network = Fppn.Network
module Process = Fppn.Process
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module Graph = Taskgraph.Graph
module Analysis = Taskgraph.Analysis

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal

let qprop name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- FFT ----------------------------------------------------------------- *)

let approx_complex (ar, ai) (br, bi) =
  Float.abs (ar -. br) < 1e-9 && Float.abs (ai -. bi) < 1e-9

let run_fft_once p feed =
  let net = Fppn_apps.Fft.network p in
  let res =
    Semantics.run ~inputs:feed net
      (Semantics.invocations ~horizon:(ms p.Fppn_apps.Fft.period_ms) net)
  in
  match List.assoc "spectrum" res.Semantics.output_history with
  | [ v ] -> Fppn_apps.Fft.spectrum_of_output v
  | _ -> Alcotest.fail "expected exactly one spectrum sample"

let test_fft_process_count () =
  List.iter
    (fun (n, expected) ->
      let p = { Fppn_apps.Fft.default_params with n } in
      Alcotest.(check int)
        (Printf.sprintf "n=%d process count" n)
        expected
        (Network.n_processes (Fppn_apps.Fft.network p));
      Alcotest.(check int) "n_processes agrees" expected (Fppn_apps.Fft.n_processes p))
    [ (2, 3); (4, 6); (8, 14); (16, 34) ]

let test_fft_impulse () =
  let p = Fppn_apps.Fft.default_params in
  let bins = run_fft_once p (Fppn_apps.Fft.impulse_feed p) in
  Array.iter
    (fun bin ->
      Alcotest.(check bool) "impulse -> flat spectrum" true
        (approx_complex bin (1.0, 0.0)))
    bins

let test_fft_matches_reference_dft () =
  let p = Fppn_apps.Fft.default_params in
  (* use the app's own default block 1 as input *)
  let feed = Fppn_apps.Fft.input_feed p ~frames:1 in
  let bins = run_fft_once p feed in
  let input =
    match feed "fft_in" 1 with
    | V.List l -> Array.of_list (List.map V.to_complex l)
    | _ -> Alcotest.fail "bad feed"
  in
  let expected = Fppn_apps.Fft.reference_dft input in
  Array.iteri
    (fun i bin ->
      let er, ei = expected.(i) and br, bi = bin in
      Alcotest.(check bool)
        (Printf.sprintf "bin %d matches the naive DFT" i)
        true
        (Float.abs (er -. br) < 1e-6 && Float.abs (ei -. bi) < 1e-6))
    bins

let prop_fft_random_signals =
  qprop "pipelined FFT equals naive DFT on random signals" ~count:30
    QCheck2.Gen.(
      pair (oneofl [ 4; 8; 16 ])
        (list_size (return 16) (float_bound_inclusive 2.0)))
    (fun (n, floats) ->
      let p = { Fppn_apps.Fft.default_params with n } in
      let samples =
        List.init n (fun i ->
            let re = List.nth floats (i mod List.length floats) in
            let im = List.nth floats ((i + 3) mod List.length floats) -. 1.0 in
            V.complex re im)
      in
      let feed = Fppn.Netstate.feed_of_list [ ("fft_in", [ V.List samples ]) ] in
      let bins = run_fft_once p feed in
      let expected =
        Fppn_apps.Fft.reference_dft
          (Array.of_list (List.map V.to_complex samples))
      in
      Array.for_all2
        (fun (ar, ai) (br, bi) ->
          Float.abs (ar -. br) < 1e-6 && Float.abs (ai -. bi) < 1e-6)
        bins expected)

let test_fft_streaming_successive_frames () =
  (* blocks are independent across frames: running 3 frames produces the
     DFT of each block *)
  let p = Fppn_apps.Fft.default_params in
  let net = Fppn_apps.Fft.network p in
  let feed = Fppn_apps.Fft.input_feed p ~frames:3 in
  let res =
    Semantics.run ~inputs:feed net (Semantics.invocations ~horizon:(ms 600) net)
  in
  let spectra = List.assoc "spectrum" res.Semantics.output_history in
  Alcotest.(check int) "three spectra" 3 (List.length spectra);
  List.iteri
    (fun i v ->
      let input =
        match feed "fft_in" (i + 1) with
        | V.List l -> Array.of_list (List.map V.to_complex l)
        | _ -> Alcotest.fail "bad feed"
      in
      let expected = Fppn_apps.Fft.reference_dft input in
      let bins = Fppn_apps.Fft.spectrum_of_output v in
      Alcotest.(check bool)
        (Printf.sprintf "frame %d spectrum" (i + 1))
        true
        (Array.for_all2
           (fun (ar, ai) (br, bi) ->
             Float.abs (ar -. br) < 1e-6 && Float.abs (ai -. bi) < 1e-6)
           bins expected))
    spectra

let test_fft_overhead_variant () =
  let p = Fppn_apps.Fft.default_params in
  let net = Fppn_apps.Fft.network_with_overhead_job p in
  Alcotest.(check int) "15 processes with the overhead job" 15
    (Network.n_processes net);
  let d =
    Derive.derive_exn
      ~wcet:(Fppn_apps.Fft.wcet_map_with_overhead p ~overhead:(ms 41))
      net
  in
  let g = d.Derive.graph in
  (* the overhead job precedes the generator *)
  let oid = Graph.find_job g ~proc:(Network.find net Fppn_apps.Fft.overhead_process) ~k:1 in
  let gid = Graph.find_job g ~proc:(Network.find net "generator") ~k:1 in
  Alcotest.(check bool) "overhead -> generator edge" true (Graph.has_edge g oid gid)

(* --- FMS ------------------------------------------------------------------ *)

let test_fms_structure () =
  let net = Fppn_apps.Fms.reduced () in
  Alcotest.(check int) "12 processes" 12 (Network.n_processes net);
  Alcotest.(check int) "7 sporadic config processes" 7
    (Array.to_list (Network.processes net)
    |> List.filter Process.is_sporadic
    |> List.length);
  Alcotest.check rat "reduced hyperperiod including sporadic periods"
    (Rat.lcm_list (List.map ms [ 200; 5000; 400; 1000; 1600 ]))
    (Network.hyperperiod net);
  match Network.user_map net with
  | Error _ -> Alcotest.fail "FMS is in the scheduling subclass"
  | Ok users ->
    let user_of name =
      match users.(Network.find net name) with
      | Some u -> Process.name (Network.process net u)
      | None -> "-"
    in
    Alcotest.(check string) "BCPConfig -> HighFreqBCP" "HighFreqBCP" (user_of "BCPConfig");
    Alcotest.(check string) "MagnDeclinConfig -> MagnDeclin" "MagnDeclin"
      (user_of "MagnDeclinConfig");
    Alcotest.(check string) "PerformanceConfig -> Performance" "Performance"
      (user_of "PerformanceConfig");
    Alcotest.(check string) "AnemoConfig -> SensorInput" "SensorInput"
      (user_of "AnemoConfig")

let test_fms_task_graph_counts () =
  (* Sec. V-B: reduced hyperperiod 10 s, 812 jobs *)
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.reduced ()) in
  Alcotest.check rat "hyperperiod 10 s" (ms 10_000) d.Derive.hyperperiod;
  Alcotest.(check int) "exactly 812 jobs" 812 (Graph.n_jobs d.Derive.graph);
  let d40 = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.original ()) in
  Alcotest.check rat "original hyperperiod 40 s" (ms 40_000) d40.Derive.hyperperiod

let test_fms_load () =
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.reduced ()) in
  let l = Analysis.load d.Derive.graph in
  let v = Rat.to_float l.Analysis.value in
  Alcotest.(check bool) "load ~ 0.23 as reported" true (v > 0.18 && v < 0.28)

let test_fms_sporadic_deadline_invariant () =
  (* every sporadic deadline exceeds its user period, so servers keep
     the plain user period (design note in fms.mli) *)
  let net = Fppn_apps.Fms.reduced () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet net in
  List.iter
    (fun (s : Derive.server_info) ->
      let user = Network.process net s.Derive.user in
      Alcotest.check rat
        (Process.name (Network.process net s.Derive.sporadic) ^ " server period")
        (Process.period user) s.Derive.server_period)
    d.Derive.servers

let test_fms_random_traces_valid () =
  let net = Fppn_apps.Fms.reduced () in
  let traces =
    Fppn_apps.Fms.random_config_traces ~seed:5 ~horizon:(ms 10_000) ~density:0.7 net
  in
  Alcotest.(check int) "one trace per sporadic" 7 (List.length traces);
  List.iter
    (fun (name, stamps) ->
      let ev = Process.event (Network.process net (Network.find net name)) in
      Alcotest.(check bool) (name ^ " trace valid") true
        (Fppn.Event.is_valid_sporadic_trace ev stamps))
    traces

let test_fms_original_scale () =
  (* the unreduced 40 s hyperperiod: 2798 jobs through the whole
     pipeline — the scale that motivated the paper's period reduction *)
  let net = Fppn_apps.Fms.original () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet net in
  let g = d.Derive.graph in
  Alcotest.(check int) "2798 jobs" 2798 (Graph.n_jobs g);
  Alcotest.check rat "40 s hyperperiod" (ms 40_000) d.Derive.hyperperiod;
  match snd (Sched.List_scheduler.auto ~n_procs:1 g) with
  | Some a ->
    Alcotest.(check bool) "single-processor feasible at low load" true
      a.Sched.List_scheduler.feasible
  | None -> Alcotest.fail "fms-original should schedule on one processor"

let test_fms_rm_priorities () =
  let net = Fppn_apps.Fms.reduced () in
  let prio = Fppn_apps.Fms.rm_priorities net in
  let rank name = List.assoc name prio in
  Alcotest.(check bool) "SensorInput highest" true (rank "SensorInput" = 0);
  Alcotest.(check bool) "HighFreq above MagnDeclin" true
    (rank "HighFreqBCP" < rank "MagnDeclin");
  Alcotest.(check bool) "LowFreq lowest periodic" true
    (rank "LowFreqBCP" > rank "Performance")

(* --- Fig. 1 behaviours ------------------------------------------------------ *)

let test_fig1_dataflow () =
  let net = Fppn_apps.Fig1.network () in
  let res =
    Semantics.run
      ~inputs:(Fppn_apps.Fig1.input_feed ~samples:8)
      net
      (Semantics.invocations ~horizon:(ms 400) net)
  in
  let out_a = List.assoc "out_a" res.Semantics.output_history in
  (* OutputA drains FilterA's double-rate FIFO: 1 sample at t=0 (only
     one FilterA job has run), then 2 per period *)
  Alcotest.(check int) "OutputA samples" 3 (List.length out_a);
  (* FilterA holds the last sample between input periods: out_b gets a
     value every other OutputB job *)
  let out_b = List.assoc "out_b" res.Semantics.output_history in
  Alcotest.(check int) "OutputB samples" 4 (List.length out_b);
  Alcotest.(check bool) "every other OutputB sample is absent" true
    (match out_b with
    | [ a; b; c; d ] ->
      (not (V.is_absent a)) && V.is_absent b && (not (V.is_absent c)) && V.is_absent d
    | _ -> false)

(* --- Randgen ---------------------------------------------------------------- *)

let prop_randgen_valid_networks =
  qprop "random networks validate and stay in the scheduling subclass"
    QCheck2.Gen.(
      let* seed = int_range 0 100_000 in
      let* n_periodic = int_range 1 10 in
      let* n_sporadic = int_range 0 5 in
      let* channel_density = float_bound_inclusive 1.0 in
      return (seed, n_periodic, n_sporadic, channel_density))
    (fun (seed, n_periodic, n_sporadic, channel_density) ->
      let params =
        { Fppn_apps.Randgen.default_params with
          seed; n_periodic; n_sporadic; channel_density }
      in
      let net = Fppn_apps.Randgen.network params in
      Network.n_processes net = n_periodic + n_sporadic
      && (match Network.user_map net with Ok _ -> true | Error _ -> false))

let prop_randgen_deterministic =
  qprop "randgen is deterministic in its seed" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let params = { Fppn_apps.Randgen.default_params with seed } in
      let a = Fppn_apps.Randgen.network params
      and b = Fppn_apps.Randgen.network params in
      Network.to_dot a = Network.to_dot b)

let () =
  Alcotest.run "apps"
    [
      ( "fft",
        [
          Alcotest.test_case "process count" `Quick test_fft_process_count;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "reference DFT" `Quick test_fft_matches_reference_dft;
          Alcotest.test_case "streaming frames" `Quick test_fft_streaming_successive_frames;
          Alcotest.test_case "overhead variant" `Quick test_fft_overhead_variant;
          prop_fft_random_signals;
        ] );
      ( "fms",
        [
          Alcotest.test_case "structure" `Quick test_fms_structure;
          Alcotest.test_case "task-graph counts" `Quick test_fms_task_graph_counts;
          Alcotest.test_case "load" `Quick test_fms_load;
          Alcotest.test_case "server periods" `Quick test_fms_sporadic_deadline_invariant;
          Alcotest.test_case "random traces" `Quick test_fms_random_traces_valid;
          Alcotest.test_case "rm priorities" `Quick test_fms_rm_priorities;
          Alcotest.test_case "original 40 s scale" `Slow test_fms_original_scale;
        ] );
      ("fig1", [ Alcotest.test_case "dataflow" `Quick test_fig1_dataflow ]);
      ( "randgen",
        [ prop_randgen_valid_networks; prop_randgen_deterministic ] );
    ]
