(* Benchmark and experiment harness.

   Regenerates every quantitative artefact of the paper's evaluation
   (Figs. 1, 3, 4 — the running example; Figs. 5, 6 and the Sec. V-A
   numbers — the FFT streaming benchmark; Fig. 7 and the Sec. V-B
   numbers — the avionics FMS), the determinism checks behind
   Props. 2.1/4.1, plus the ablations called out in DESIGN.md; then runs
   Bechamel micro-benchmarks of every pipeline stage.

   Every section renders into its own buffer, so independent sections
   are computed concurrently on a Rt_util.Pool of domains (--jobs N) and
   printed in their fixed order; the timing-sensitive sections (the
   transitive-reduction ablation and the Bechamel micro-benchmarks) stay
   sequential.  --json FILE switches to the perf-regression harness: it
   times the hot pipeline stages at jobs=1 and jobs=N and writes the
   medians as JSON (see EXPERIMENTS.md, "Performance").

   The printed "paper" column quotes the published value; "measured" is
   what this reproduction obtains.  Absolute times differ from the
   MPPA-256/i7 testbeds; the comparisons of interest are the shapes
   (who wins, where the load crosses 1.0, which mappings miss
   deadlines). *)

module Rat = Rt_util.Rat
module Pool = Rt_util.Pool
module Table = Rt_util.Table
module Gantt = Rt_util.Gantt
module V = Fppn.Value
module Network = Fppn.Network
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Analysis = Taskgraph.Analysis
module Priority = Sched.Priority
module List_scheduler = Sched.List_scheduler
module Static_schedule = Sched.Static_schedule
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace
module Platform = Runtime.Platform
module Uniproc_fp = Runtime.Uniproc_fp
module Translate = Timedauto.Translate

let ms = Rat.of_int

let section buf title =
  Printf.bprintf buf "\n%s\n%s\n%s\n" (String.make 74 '=') title
    (String.make 74 '=')

let subsection buf title = Printf.bprintf buf "\n--- %s ---\n" title

let bline buf s =
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

let table buf ?aligns ~header rows =
  Buffer.add_string buf (Table.render ?aligns ~header rows)

let gantt buf ~width ~t_min ~t_max rows =
  Buffer.add_string buf (Gantt.render ~width ~t_min ~t_max rows)

let fstr f = Printf.sprintf "%.3f" f

let eq_sig a b =
  List.equal
    (fun (n1, h1) (n2, h2) -> String.equal n1 n2 && List.equal V.equal h1 h2)
    a b

let schedule_or_fallback ?(heuristic = Priority.Alap_edf) ~n_procs g =
  match snd (List_scheduler.auto ~n_procs g) with
  | Some a -> (a.List_scheduler.schedule, true)
  | None -> (List_scheduler.schedule_with ~heuristic ~n_procs g, false)

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 network -> Fig. 3 task graph                              *)
(* ------------------------------------------------------------------ *)

let e1_fig3 buf =
  section buf "E1  Task-graph derivation: Fig. 1 network -> Fig. 3 task graph";
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let g = d.Derive.graph in
  subsection buf "derived jobs (A_i, D_i, C_i) — compare with Fig. 3";
  table buf
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:[ "job"; "A_i"; "D_i"; "C_i"; "kind" ]
    (Array.to_list
       (Array.map
          (fun j ->
            [
              Job.label j;
              Rat.to_string j.Job.arrival;
              Rat.to_string j.Job.deadline;
              Rat.to_string j.Job.wcet;
              (if j.Job.is_server then "server (sporadic)" else "periodic");
            ])
          (Graph.jobs g)));
  subsection buf "precedence edges after transitive reduction";
  List.iter
    (fun (u, v) ->
      Printf.bprintf buf "  %s -> %s\n"
        (Job.label (Graph.job g u))
        (Job.label (Graph.job g v)))
    (Graph.edges g);
  subsection buf "summary (paper vs measured)";
  let redundant_removed =
    let find lbl =
      let rec scan i =
        if Job.label (Graph.job g i) = lbl then i else scan (i + 1)
      in
      scan 0
    in
    not (Graph.has_edge g (find "InputA[1]") (find "NormA[1]"))
  in
  table buf
    ~header:[ "quantity"; "paper"; "measured" ]
    [
      [ "hyperperiod H"; "200 ms"; Rat.to_string d.Derive.hyperperiod ^ " ms" ];
      [ "jobs (m_p * H/T_p per process)"; "10"; string_of_int (Graph.n_jobs g) ];
      [ "redundant InputA->NormA edge removed"; "yes";
        (if redundant_removed then "yes" else "NO") ];
      [ "edges before reduction"; "-"; string_of_int d.Derive.raw_edges ];
      [ "edges after reduction"; "-"; string_of_int (Graph.n_edges g) ];
    ]

(* ------------------------------------------------------------------ *)
(* E2: Fig. 4 static schedule on two processors                         *)
(* ------------------------------------------------------------------ *)

let e2_fig4 pool buf =
  section buf "E2  Static schedule for the Fig. 3 task graph on M=2 (Fig. 4)";
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let g = d.Derive.graph in
  let attempts, best = List_scheduler.auto ~pool ~n_procs:2 g in
  List.iter
    (fun (a : List_scheduler.attempt) ->
      Printf.bprintf buf "  %-20s feasible=%-5b makespan=%s ms\n"
        (Priority.to_string a.List_scheduler.heuristic)
        a.List_scheduler.feasible
        (Rat.to_string a.List_scheduler.makespan))
    attempts;
  match best with
  | None -> bline buf "  !! no feasible schedule found (unexpected)"
  | Some a ->
    let s = a.List_scheduler.schedule in
    subsection buf
      (Printf.sprintf "chosen schedule (%s) — one 200 ms frame, as Fig. 4"
         (Priority.to_string a.List_scheduler.heuristic));
    gantt buf ~width:66 ~t_min:0.0 ~t_max:200.0
      (Static_schedule.to_gantt_rows g s);
    Printf.bprintf buf "  feasible: %b; makespan %s ms (frame 200 ms)\n"
      (Static_schedule.is_feasible g s)
      (Rat.to_string (Static_schedule.makespan g s))

(* ------------------------------------------------------------------ *)
(* E3: FFT streaming benchmark (Fig. 5, Fig. 6, Sec. V-A numbers)       *)
(* ------------------------------------------------------------------ *)

let e3_fft pool buf =
  section buf "E3  FFT streaming benchmark (Figs. 5-6, Sec. V-A)";
  let p = Fppn_apps.Fft.default_params in
  let net = Fppn_apps.Fft.network p in
  let d = Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map p) net in
  let g = d.Derive.graph in
  let load = Analysis.load g in
  (* paper trick: model the arrival-management overhead as an extra job
     with a precedence edge directed to the generator *)
  let net_oh = Fppn_apps.Fft.network_with_overhead_job p in
  let d_oh =
    Derive.derive_exn
      ~wcet:(Fppn_apps.Fft.wcet_map_with_overhead p ~overhead:(ms 41))
      net_oh
  in
  let load_oh = Analysis.load d_oh.Derive.graph in
  let overhead =
    { Platform.first_frame = ms 41; steady_frame = ms 20; per_access = Rat.zero }
  in
  let frames = 25 in
  let run_fft n_procs =
    let sched, _feasible = schedule_or_fallback ~n_procs g in
    let config =
      { (Engine.default_config ~frames ~n_procs ()) with
        Engine.platform = Platform.create ~overhead ~n_procs ();
        inputs = Fppn_apps.Fft.input_feed p ~frames }
    in
    Engine.run net d sched config
  in
  let r1, r2 =
    match Pool.map_list ~chunk:1 pool run_fft [ 1; 2 ] with
    | [ r1; r2 ] -> (r1, r2)
    | _ -> assert false
  in
  subsection buf "summary (paper vs measured)";
  table buf
    ~header:[ "quantity"; "paper"; "measured" ]
    [
      [ "processes / jobs per frame"; "14"; string_of_int (Graph.n_jobs g) ];
      [ "task-graph load (no overhead)"; "0.93"; fstr (Rat.to_float load.Analysis.value) ];
      [ "load with 41 ms overhead job"; "~1.2"; fstr (Rat.to_float load_oh.Analysis.value) ];
      [ "ceil(load) processors needed"; "2"; string_of_int (Rat.ceil load_oh.Analysis.value) ];
      [ Printf.sprintf "deadline misses, M=1 (%d frames)" frames;
        "observed (>0)"; string_of_int r1.Engine.stats.Exec_trace.misses ];
      [ Printf.sprintf "deadline misses, M=2 (%d frames)" frames;
        "0"; string_of_int r2.Engine.stats.Exec_trace.misses ];
      [ "frame overhead modelled"; "41 ms first / 20 ms steady"; "same" ];
    ];
  subsection buf "M=2 steady-state frame (Fig. 6 analogue; frame 1, 200-400 ms)";
  let rows =
    Exec_trace.to_gantt_rows ~runtime_row:(Engine.overhead_segments r2)
      (List.filter (fun (r : Exec_trace.record) -> r.Exec_trace.frame = 1) (Engine.trace r2))
  in
  let rows =
    List.map
      (fun (row : Gantt.row) ->
        { row with
          Gantt.segments =
            List.filter
              (fun (s : Gantt.segment) -> s.Gantt.start >= 200.0 && s.Gantt.finish <= 400.0)
              row.Gantt.segments })
      rows
  in
  gantt buf ~width:66 ~t_min:200.0 ~t_max:400.0 rows

(* ------------------------------------------------------------------ *)
(* E4: FMS avionics case study (Fig. 7, Sec. V-B numbers)               *)
(* ------------------------------------------------------------------ *)

let e4_fms pool buf =
  section buf "E4  FMS avionics case study (Fig. 7, Sec. V-B)";
  let net40 = Fppn_apps.Fms.original () in
  let d40 = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet net40 in
  let net = Fppn_apps.Fms.reduced () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet net in
  let g = d.Derive.graph in
  let load = Analysis.load g in
  let horizon = d.Derive.hyperperiod in
  let traces =
    Fppn_apps.Fms.random_config_traces ~seed:11 ~horizon ~density:0.5 net
  in
  let traces =
    (* keep only events whose window closes inside the simulated frame *)
    let _, unhandled = Engine.sporadic_assignment net d ~frames:1 traces in
    List.map
      (fun (n, stamps) ->
        (n, List.filter (fun s -> not (List.mem (n, s) unhandled)) stamps))
      traces
  in
  let run_fms ~n_procs =
    let sched, feasible = schedule_or_fallback ~n_procs g in
    let config =
      { (Engine.default_config ~frames:1 ~n_procs ()) with
        Engine.sporadic = traces;
        exec = Exec_time.uniform ~seed:5 ~min_fraction:0.5 }
    in
    (Engine.run net d sched config, feasible)
  in
  let results =
    Pool.map_list ~chunk:1 pool (fun m -> (m, run_fms ~n_procs:m)) [ 1; 2; 4 ]
  in
  (* functional equivalence with the rate-monotonic uniprocessor
     prototype, "verified by testing" in the paper *)
  let zd = Semantics.run net (Semantics.invocations ~sporadic:traces ~horizon net) in
  let up =
    Uniproc_fp.run net
      { (Uniproc_fp.default_config ~wcet:Fppn_apps.Fms.wcet ~horizon) with
        Uniproc_fp.sporadic = traces }
  in
  let equivalent = eq_sig (Semantics.signature zd) (Uniproc_fp.signature up) in
  subsection buf "summary (paper vs measured)";
  table buf
    ~header:[ "quantity"; "paper"; "measured" ]
    ([
       [ "processes (periodic + sporadic)"; "12 (5+7)";
         string_of_int (Network.n_processes net) ];
       [ "original hyperperiod"; "40 s";
         fstr (Rat.to_float d40.Derive.hyperperiod /. 1000.0) ^ " s" ];
       [ "reduced hyperperiod (MagnDeclin 1600->400 ms)"; "10 s";
         fstr (Rat.to_float d.Derive.hyperperiod /. 1000.0) ^ " s" ];
       [ "task-graph jobs"; "812"; string_of_int (Graph.n_jobs g) ];
       [ "task-graph edges"; "1977"; string_of_int (Graph.n_edges g) ];
       [ "edges before reduction"; "-"; string_of_int d.Derive.raw_edges ];
       [ "task-graph load"; "~0.23"; fstr (Rat.to_float load.Analysis.value) ];
       [ "RM uniprocessor functionally equivalent"; "yes (verified by testing)";
         (if equivalent then "yes" else "NO") ];
     ]
    @ List.map
        (fun (m, (r, feasible)) ->
          [
            Printf.sprintf "M=%d: deadline misses (1 frame)" m;
            (if m = 1 then "0 (no misses at load 0.23)" else "0");
            Printf.sprintf "%d%s" r.Engine.stats.Exec_trace.misses
              (if feasible then "" else " (fallback schedule)");
          ])
        results);
  subsection buf
    "M=2 execution, first second of the 10 s frame (the extended version's \
     Gantt)";
  (let sched2, _ = schedule_or_fallback ~n_procs:2 g in
   let r2 =
     Engine.run net d sched2
       { (Engine.default_config ~frames:1 ~n_procs:2 ()) with
         Engine.sporadic = traces }
   in
   let rows =
     List.map
       (fun (row : Gantt.row) ->
         { row with
           Gantt.segments =
             List.filter (fun (s : Gantt.segment) -> s.Gantt.finish <= 1000.0) row.Gantt.segments })
       (Exec_trace.to_gantt_rows (Engine.trace r2))
   in
   gantt buf ~width:66 ~t_min:0.0 ~t_max:1000.0 rows);
  subsection buf "per-M schedule quality";
  table buf
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "M"; "makespan (ms)"; "executed"; "skipped ('false' slots)" ]
    (List.map
       (fun (m, (r, _)) ->
         let sched, _ = schedule_or_fallback ~n_procs:m g in
         [
           string_of_int m;
           Rat.to_string (Static_schedule.makespan g sched);
           string_of_int r.Engine.stats.Exec_trace.executed;
           string_of_int r.Engine.stats.Exec_trace.skipped;
         ])
       results)

(* ------------------------------------------------------------------ *)
(* E5: determinism across interpreters (Props. 2.1 and 4.1)             *)
(* ------------------------------------------------------------------ *)

let e5_determinism pool buf =
  section buf "E5  Deterministic execution (Props. 2.1 / 4.1)";
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let frames = 4 in
  let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int frames) in
  let coefb = [ ms 50; ms 200 ] in
  let inputs = Fppn_apps.Fig1.input_feed ~samples:64 in
  let zd =
    Semantics.run ~inputs net
      (Semantics.invocations ~sporadic:[ ("CoefB", coefb) ] ~horizon net)
  in
  let zd_sig = Semantics.signature zd in
  let engine_check ~n_procs ~seed () =
    let sched, _ = schedule_or_fallback ~n_procs d.Derive.graph in
    let config =
      { (Engine.default_config ~frames ~n_procs ()) with
        Engine.sporadic = [ ("CoefB", coefb) ];
        inputs;
        exec = Exec_time.uniform ~seed ~min_fraction:0.25 }
    in
    eq_sig zd_sig (Engine.signature (Engine.run net d sched config))
  in
  let ta_check ~n_procs ~seed () =
    let sched, _ = schedule_or_fallback ~n_procs d.Derive.graph in
    let config =
      { (Engine.default_config ~frames ~n_procs ()) with
        Engine.sporadic = [ ("CoefB", coefb) ];
        inputs;
        exec = Exec_time.uniform ~seed ~min_fraction:0.25 }
    in
    eq_sig zd_sig
      (Translate.signature (Translate.execute (Translate.build net d sched config)))
  in
  let rows =
    Pool.map_list ~chunk:1 pool
      (fun (label, check) ->
        [ label; (if check () then "identical" else "DIFFERS") ])
      [
        ("zero-delay vs static-order runtime, M=2, jitter seed 1", engine_check ~n_procs:2 ~seed:1);
        ("zero-delay vs static-order runtime, M=2, jitter seed 42", engine_check ~n_procs:2 ~seed:42);
        ("zero-delay vs static-order runtime, M=3, jitter seed 7", engine_check ~n_procs:3 ~seed:7);
        ("zero-delay vs static-order runtime, M=4, jitter seed 13", engine_check ~n_procs:4 ~seed:13);
        ("zero-delay vs timed-automata backend, M=2, jitter seed 5", ta_check ~n_procs:2 ~seed:5);
        ("zero-delay vs timed-automata backend, M=4, jitter seed 9", ta_check ~n_procs:4 ~seed:9);
      ]
  in
  table buf
    ~header:[ "comparison (Fig. 1 app, 4 frames, sporadic CoefB)"; "channel histories" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: schedule-priority heuristic ablation (Sec. III-B)                *)
(* ------------------------------------------------------------------ *)

let e6_heuristics pool buf =
  section buf "E6  Ablation: schedule-priority heuristics (Sec. III-B)";
  let cases =
    let fig1 = Fppn_apps.Fig1.network () in
    let fft = Fppn_apps.Fft.network Fppn_apps.Fft.default_params in
    let fms = Fppn_apps.Fms.reduced () in
    let rand =
      Fppn_apps.Randgen.network
        { Fppn_apps.Randgen.default_params with seed = 5; n_periodic = 10; n_sporadic = 3 }
    in
    [
      ("fig1 (M=2)", Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet fig1, 2);
      ( "fft8 (M=2)",
        Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map Fppn_apps.Fft.default_params) fft,
        2 );
      ("fms (M=1)", Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet fms, 1);
      ( "random10 (M=2)",
        Derive.derive_exn
          ~wcet:
            (Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 6)
               (Derive.const_wcet Rat.one) rand)
          rand,
        2 );
    ]
  in
  let header = "workload" :: List.map Priority.to_string Priority.all in
  let rows =
    Pool.map_list ~chunk:1 pool
      (fun (name, d, n_procs) ->
        name
        :: List.map
             (fun h ->
               let s =
                 List_scheduler.schedule_with ~heuristic:h ~n_procs d.Derive.graph
               in
               let feasible = Static_schedule.is_feasible d.Derive.graph s in
               Printf.sprintf "%s %s"
                 (if feasible then "ok" else "MISS")
                 (Rat.to_string (Static_schedule.makespan d.Derive.graph s)))
             Priority.all)
      cases
  in
  table buf ~header rows;
  bline buf "  (cell = feasibility + makespan in ms under that heuristic)";
  (* the Sec. III-B remark: a sub-optimal SP can be repaired by search *)
  subsection buf "stochastic SP repair (ref. [8]) starting from FIFO on fig1 (M=2)";
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()) in
  let g = d.Derive.graph in
  let base = List_scheduler.schedule_with ~heuristic:Priority.Fifo_arrival ~n_procs:2 g in
  let o = Sched.Optimizer.improve ~seed:7 ~iterations:600 ~start:Priority.Fifo_arrival ~n_procs:2 g in
  table buf
    ~header:[ "schedule"; "feasible"; "makespan ms" ]
    [
      [ "fifo heuristic"; string_of_bool (Static_schedule.is_feasible g base);
        Rat.to_string (Static_schedule.makespan g base) ];
      [ Printf.sprintf "fifo + %d swap trials" o.Sched.Optimizer.iterations;
        string_of_bool o.Sched.Optimizer.feasible;
        Rat.to_string o.Sched.Optimizer.makespan ];
    ]

(* ------------------------------------------------------------------ *)
(* E7: job-granularity sweep (Sec. V-A closing remark)                  *)
(* ------------------------------------------------------------------ *)

let e7_granularity pool buf =
  section buf "E7  Granularity sweep: overhead impact vs job grain (Sec. V-A)";
  bline buf
    "  The FFT is scaled: period and WCET grow together (same intrinsic\n\
    \  load 0.93) while the 41/20 ms runtime overhead stays fixed, so the\n\
    \  relative overhead shrinks as jobs get coarser.";
  let overhead =
    { Platform.first_frame = ms 41; steady_frame = ms 20; per_access = Rat.zero }
  in
  let rows =
    Pool.map_list ~chunk:1 pool
      (fun (label, period_ms, wcet) ->
        let p = { Fppn_apps.Fft.n = 8; period_ms; wcet } in
        let net = Fppn_apps.Fft.network p in
        let d = Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map p) net in
        let g = d.Derive.graph in
        (* effective utilization including the per-frame overhead *)
        let eff =
          Rat.to_float
            (Rat.div (Rat.add (ms 41) (Graph.total_wcet g)) (ms period_ms))
        in
        let run ~n_procs =
          let sched, _ = schedule_or_fallback ~n_procs g in
          let config =
            { (Engine.default_config ~frames:12 ~n_procs ()) with
              Engine.platform = Platform.create ~overhead ~n_procs () }
          in
          (Engine.run net d sched config).Engine.stats.Exec_trace.misses
        in
        [
          label;
          string_of_int period_ms;
          Rat.to_string wcet;
          fstr eff;
          string_of_int (run ~n_procs:1);
          string_of_int (run ~n_procs:2);
        ])
      [
        ("0.5x", 100, Rat.make 133 20);
        ("1x (paper)", 200, Rat.make 133 10);
        ("1.5x", 300, Rat.make 399 20);
        ("2x", 400, Rat.make 133 5);
        ("4x", 800, Rat.make 266 5);
      ]
  in
  table buf
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "grain"; "period ms"; "wcet ms"; "load+overhead"; "misses M=1"; "misses M=2" ]
    rows;
  bline buf
    "  Expected shape: fine grain -> overhead dominates, M=1 misses;\n\
    \  coarse grain -> load+overhead drops below 1 and M=1 suffices."

(* ------------------------------------------------------------------ *)
(* E8: why FPPN — global EDF is not deterministic                       *)
(* ------------------------------------------------------------------ *)

let e8_nondeterminism pool buf =
  section buf "E8  Motivation check: naive global EDF is not deterministic (Sec. I)";
  bline buf
    "  The same Fig. 1 workload, same inputs, same event stamps, executed\n\
    \  with 8 different execution-time jitter seeds.  Global preemptive EDF\n\
    \  (no functional priorities, no precedence synchronization) lets the\n\
    \  interleaving leak into the data; the FPPN static-order runtime does\n\
    \  not.";
  let net = Fppn_apps.Fig1.network () in
  let inputs = Fppn_apps.Fig1.input_feed ~samples:64 in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let distinct signatures =
    List.length
      (List.fold_left
         (fun acc s -> if List.exists (eq_sig s) acc then acc else s :: acc)
         [] signatures)
  in
  let edf_sigs =
    Pool.map_list ~chunk:1 pool
      (fun seed ->
        let cfg =
          { (Runtime.Global_edf.default_config ~wcet:Fppn_apps.Fig1.wcet
               ~horizon:(ms 1000) ~n_procs:2)
            with
            Runtime.Global_edf.exec = Exec_time.uniform ~seed ~min_fraction:0.05;
            inputs }
        in
        Runtime.Global_edf.signature (Runtime.Global_edf.run net cfg))
      seeds
  in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched, _ = schedule_or_fallback ~n_procs:2 d.Derive.graph in
  let fppn_sigs =
    Pool.map_list ~chunk:1 pool
      (fun seed ->
        let cfg =
          { (Engine.default_config ~frames:5 ~n_procs:2 ()) with
            Engine.inputs = inputs;
            exec = Exec_time.uniform ~seed ~min_fraction:0.05 }
        in
        Engine.signature (Engine.run net d sched cfg))
      seeds
  in
  table buf
    ~header:[ "runtime"; "distinct channel histories over 8 jitter seeds" ]
    [
      [ "global EDF (M=2)"; string_of_int (distinct edf_sigs) ];
      [ "FPPN static-order (M=2)"; string_of_int (distinct fppn_sigs) ];
    ];
  bline buf "  (1 = deterministic; >1 = outputs depend on execution timing)"

(* ------------------------------------------------------------------ *)
(* End-to-end latency (the Sec. I motivation)                           *)
(* ------------------------------------------------------------------ *)

let latency_analysis buf =
  section buf "End-to-end latency: deterministic reaction times";
  bline buf
    "  Because the task graph fixes which source job each sink job reads,\n\
    \  end-to-end reaction times are well defined; under WCET execution they\n\
    \  give a bound that jittered runs can only improve on.";
  let fig1 = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet fig1 in
  let sched, _ = schedule_or_fallback ~n_procs:2 d.Derive.graph in
  let run exec =
    let cfg = { (Engine.default_config ~frames:3 ~n_procs:2 ()) with Engine.exec } in
    Engine.run fig1 d sched cfg
  in
  let latency trace src snk =
    Runtime.Latency.analyse d.Derive.graph ~source:src ~sink:snk trace
  in
  let bound = latency (Engine.trace (run Exec_time.constant)) "InputA" "OutputA" in
  let jittered =
    latency
      (Engine.trace (run (Exec_time.uniform ~seed:9 ~min_fraction:0.3)))
      "InputA" "OutputA"
  in
  let fms = Fppn_apps.Fms.reduced () in
  let dfms = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet fms in
  let sfms, _ = schedule_or_fallback ~n_procs:1 dfms.Derive.graph in
  let rfms =
    Engine.run fms dfms sfms (Engine.default_config ~frames:1 ~n_procs:1 ())
  in
  let fms_lat =
    Runtime.Latency.analyse dfms.Derive.graph ~source:"SensorInput"
      ~sink:"Performance" (Engine.trace rfms)
  in
  table buf
    ~header:[ "chain"; "execution"; "max reaction ms"; "mean ms"; "max age ms" ]
    [
      [ "fig1 InputA->OutputA (M=2)"; "WCET";
        Rat.to_string bound.Runtime.Latency.max_reaction;
        fstr bound.Runtime.Latency.mean_reaction_ms;
        Rat.to_string bound.Runtime.Latency.max_age ];
      [ "fig1 InputA->OutputA (M=2)"; "jittered";
        Rat.to_string jittered.Runtime.Latency.max_reaction;
        fstr jittered.Runtime.Latency.mean_reaction_ms;
        Rat.to_string jittered.Runtime.Latency.max_age ];
      [ "fms SensorInput->Performance (M=1)"; "WCET";
        Rat.to_string fms_lat.Runtime.Latency.max_reaction;
        fstr fms_lat.Runtime.Latency.mean_reaction_ms;
        Rat.to_string fms_lat.Runtime.Latency.max_age ];
    ]

(* ------------------------------------------------------------------ *)
(* Classical response-time analysis vs simulation                       *)
(* ------------------------------------------------------------------ *)

let rta_section buf =
  section buf "Uniprocessor response-time analysis (ref. [9]) vs simulation";
  bline buf
    "  The analytic rate-monotonic bound must dominate every simulated\n\
    \  response of the preemptive uniprocessor baseline.";
  List.iter
    (fun (name, net, wcet, horizon) ->
      subsection buf name;
      let entries = Sched.Rta.analyse ~wcet net in
      let up =
        Uniproc_fp.run net (Uniproc_fp.default_config ~wcet ~horizon)
      in
      let observed = Hashtbl.create 16 in
      List.iter
        (fun (r : Uniproc_fp.record) ->
          let resp = Rat.sub r.Uniproc_fp.finished r.Uniproc_fp.released in
          let prev =
            try Hashtbl.find observed r.Uniproc_fp.process
            with Not_found -> Rat.zero
          in
          Hashtbl.replace observed r.Uniproc_fp.process (Rat.max prev resp))
        up.Uniproc_fp.records;
      table buf
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
        ~header:[ "process"; "analytic bound ms"; "simulated max ms"; "deadline ms" ]
        (List.map
           (fun (e : Sched.Rta.entry) ->
             [
               e.Sched.Rta.process;
               (match e.Sched.Rta.response with
               | Some r -> Rat.to_string r
               | None -> "unsched");
               (match Hashtbl.find_opt observed e.Sched.Rta.process with
               | Some r -> Rat.to_string r
               | None -> "-");
               Rat.to_string e.Sched.Rta.deadline;
             ])
           entries))
    [
      ("fms (RM, 10 s)", Fppn_apps.Fms.reduced (), Fppn_apps.Fms.wcet, ms 10_000);
      ( "automotive (RM, 200 ms)",
        Fppn_apps.Automotive.network (),
        Fppn_apps.Automotive.wcet,
        ms 200 );
    ]

(* ------------------------------------------------------------------ *)
(* Buffer sizing (Prop. 2.1 applied to FIFO occupancy)                  *)
(* ------------------------------------------------------------------ *)

let buffer_sizing buf =
  section buf "Buffer sizing: FIFO occupancy bounds from the reference run";
  let report name net ~sporadic ~inputs =
    subsection buf name;
    let r = Fppn.Buffer_analysis.analyse ~hyperperiods:4 ?sporadic ?inputs net in
    Buffer.add_string buf (Format.asprintf "%a" Fppn.Buffer_analysis.pp r)
  in
  report "fig1" (Fppn_apps.Fig1.network ())
    ~sporadic:None
    ~inputs:(Some (Fppn_apps.Fig1.input_feed ~samples:64));
  report "fft8"
    (Fppn_apps.Fft.network Fppn_apps.Fft.default_params)
    ~sporadic:None ~inputs:None

(* ------------------------------------------------------------------ *)
(* Processor dimensioning                                               *)
(* ------------------------------------------------------------------ *)

let dimensioning pool buf =
  section buf "Processor dimensioning (Prop. 3.1 lower bound vs list scheduler)";
  let p = Fppn_apps.Fft.default_params in
  let cases =
    [
      ("fig1", Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()));
      ("fft8", Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map p) (Fppn_apps.Fft.network p));
      ( "fft8+overhead",
        Derive.derive_exn
          ~wcet:(Fppn_apps.Fft.wcet_map_with_overhead p ~overhead:(ms 41))
          (Fppn_apps.Fft.network_with_overhead_job p) );
      ("fms", Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.reduced ()));
      ( "automotive",
        Derive.derive_exn ~wcet:Fppn_apps.Automotive.wcet
          (Fppn_apps.Automotive.network ()) );
    ]
  in
  table buf
    ~header:[ "workload"; "ceil(load)"; "processors found"; "makespan ms" ]
    (Pool.map_list ~chunk:1 pool
       (fun (name, d) ->
         let v = Sched.Dimension.min_processors d.Derive.graph in
         match v.Sched.Dimension.found with
         | Some (m, a) ->
           [
             name;
             string_of_int v.Sched.Dimension.lower_bound;
             string_of_int m;
             Rat.to_string a.List_scheduler.makespan;
           ]
         | None ->
           [ name; string_of_int v.Sched.Dimension.lower_bound; "none"; "-" ])
       cases);
  bline buf
    "  FFT: one core is not enough once the overhead job is accounted for,\n\
    \  two suffice — the Sec. V-A conclusion."

(* ------------------------------------------------------------------ *)
(* Ablation: transitive reduction                                       *)
(* ------------------------------------------------------------------ *)

let ablation_reduction buf =
  section buf "Ablation  Transitive reduction of the derived task graph";
  let rows =
    List.map
      (fun (name, net, wcet) ->
        let t0 = Unix.gettimeofday () in
        let with_red = Derive.derive_exn ~wcet net in
        let t1 = Unix.gettimeofday () in
        let without = Derive.derive_exn ~reduce:false ~wcet net in
        let t2 = Unix.gettimeofday () in
        [
          name;
          string_of_int (Graph.n_jobs with_red.Derive.graph);
          string_of_int without.Derive.raw_edges;
          string_of_int (Graph.n_edges with_red.Derive.graph);
          Printf.sprintf "%.1f" ((t1 -. t0) *. 1000.0);
          Printf.sprintf "%.1f" ((t2 -. t1) *. 1000.0);
        ])
      [
        ("fig1", Fppn_apps.Fig1.network (), Fppn_apps.Fig1.wcet);
        ( "fft8",
          Fppn_apps.Fft.network Fppn_apps.Fft.default_params,
          Fppn_apps.Fft.wcet_map Fppn_apps.Fft.default_params );
        ("fms", Fppn_apps.Fms.reduced (), Fppn_apps.Fms.wcet);
      ]
  in
  table buf
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "workload"; "jobs"; "raw edges"; "reduced edges"; "derive+reduce ms";
        "derive only ms" ]
    rows

(* ------------------------------------------------------------------ *)
(* Heuristic optimality gap vs exact branch-and-bound (footnote 5)      *)
(* ------------------------------------------------------------------ *)

let exact_gap pool buf =
  section buf "Optimality gap: list scheduling vs exact branch-and-bound (fn. 5)";
  bline buf
    "  Footnote 5 contrasts scalable list scheduling with exact but\n\
    \  less-scalable search.  On graphs small enough to solve exactly, the\n\
    \  ALAP-EDF heuristic's makespan is compared with the proved optimum.";
  let cases =
    ( "fig1 (10 jobs, M=2)",
      (Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ())).Derive.graph,
      2 )
    :: List.map
         (fun seed ->
           let params =
             { Fppn_apps.Randgen.default_params with
               seed; n_periodic = 4; n_sporadic = 1 }
           in
           let net = Fppn_apps.Randgen.network params in
           let wcet =
             Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 8)
               (Derive.const_wcet Rat.one) net
           in
           ( Printf.sprintf "random seed %d (M=2)" seed,
             (Derive.derive_exn ~wcet net).Derive.graph,
             2 ))
         [ 101; 202; 303 ]
  in
  (* cases run concurrently; each solve stays sequential so its node
     count is reproducible *)
  let rows =
    Pool.map_list ~chunk:1 pool
      (fun (name, g, m) ->
        let s = List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:m g in
        let heuristic_makespan = Static_schedule.makespan g s in
        let r = Sched.Exact.solve ~node_budget:500_000 ~n_procs:m g in
        [
          name;
          string_of_int (Graph.n_jobs g);
          Rat.to_string heuristic_makespan
          ^ (if Static_schedule.is_feasible g s then "" else " (misses)");
          (match r.Sched.Exact.makespan with
          | Some o -> Rat.to_string o
          | None -> if r.Sched.Exact.optimal then "infeasible" else "-");
          (if r.Sched.Exact.optimal then
             match r.Sched.Exact.makespan with
             | Some o ->
               Printf.sprintf "%.1f%%"
                 ((Rat.to_float heuristic_makespan -. Rat.to_float o)
                 /. Rat.to_float o *. 100.0)
             | None -> "-"
           else "budget hit");
          string_of_int r.Sched.Exact.nodes;
        ])
      cases
  in
  table buf
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "graph"; "jobs"; "heuristic ms"; "optimal ms"; "gap"; "B&B nodes" ]
    rows

(* ------------------------------------------------------------------ *)
(* Scheduler capacity study on random workloads                         *)
(* ------------------------------------------------------------------ *)

let capacity_study pool buf =
  section buf "Scheduler capacity: feasibility rate vs utilization and processors";
  bline buf
    "  100 random FPPNs per cell (2-8 periodic + 0-3 sporadic processes);\n\
    \  per-process WCET = scale * T_p.  A cell reports how many workloads\n\
    \  the heuristic portfolio schedules feasibly on M processors.";
  let seeds = List.init 100 (fun i -> 1000 + i) in
  let graphs scale =
    List.map
      (fun seed ->
        let params =
          { Fppn_apps.Randgen.default_params with
            seed;
            n_periodic = 2 + (seed mod 7);
            n_sporadic = seed mod 4 }
        in
        let net = Fppn_apps.Randgen.network params in
        let wcet =
          Fppn_apps.Randgen.wcet ~scale (Derive.const_wcet Rat.one) net
        in
        (Derive.derive_exn ~wcet net).Derive.graph)
      seeds
  in
  let rows =
    Pool.map_list ~chunk:1 pool
      (fun (label, scale) ->
        let gs = graphs scale in
        label
        :: List.map
             (fun m ->
               let feasible =
                 List.length
                   (List.filter Fun.id
                      (Pool.map_list pool
                         (fun g -> snd (List_scheduler.auto ~n_procs:m g) <> None)
                         gs))
               in
               Printf.sprintf "%d%%" feasible)
             [ 1; 2; 4 ])
      [
        ("scale 1/20", Rat.make 1 20);
        ("scale 1/10", Rat.make 1 10);
        ("scale 1/6", Rat.make 1 6);
        ("scale 1/4", Rat.make 1 4);
      ]
  in
  table buf ~header:[ "per-process utilization"; "M=1"; "M=2"; "M=4" ] rows;
  bline buf
    "  Feasibility falls as utilization grows and recovers with processors\n\
    \  — until precedence chains, not capacity, become the binding constraint."

(* ------------------------------------------------------------------ *)
(* Future work implemented: mixed-criticality execution                 *)
(* ------------------------------------------------------------------ *)

let mixed_criticality buf =
  section buf "Future work: mixed-critical scheduling (Sec. VI)";
  bline buf
    "  Dual-criticality demo (examples/mixed_criticality.ml): a HI control\n\
    \  chain shares two cores with LO best-effort processes.  True durations\n\
    \  are jittered up to the conservative C_HI budgets, so some frames\n\
    \  overrun the optimistic C_LO budgets and degrade.";
  let module Spec = Mixedcrit.Spec in
  let module Dual = Mixedcrit.Dual_schedule in
  let module Mc = Mixedcrit.Mc_engine in
  let ms_ = ms in
  let b = Network.Builder.create "mc-bench" in
  let add name body =
    Network.Builder.add_process b
      (Fppn.Process.make ~name
         ~event:(Fppn.Event.periodic ~period:(ms_ 100) ~deadline:(ms_ 100) ())
         (Fppn.Process.Native body))
  in
  add "Sensor" (fun ctx -> ctx.Fppn.Process.write "meas" (V.Int ctx.Fppn.Process.job_index));
  add "Control" (fun ctx ->
      ctx.Fppn.Process.write "act" (ctx.Fppn.Process.read "meas"));
  add "Logger" (fun _ -> ());
  add "Telemetry" (fun _ -> ());
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Sensor"
    ~reader:"Control" "meas";
  Network.Builder.add_priority b "Sensor" "Control";
  Network.Builder.add_output b ~owner:"Control" "act";
  let net = Network.Builder.finish_exn b in
  let spec =
    Spec.of_list ~default_criticality:Spec.Lo
      ~wcet_lo:(Derive.wcet_of_list (ms_ 30) [ ("Sensor", ms_ 15); ("Control", ms_ 20) ])
      ~hi:[ ("Sensor", ms_ 40); ("Control", ms_ 55) ]
  in
  let dual = Dual.build_exn ~n_procs:2 ~spec net in
  let rows =
    List.map
      (fun (label, exec) ->
        let config =
          { (Mc.default_config ~frames:50 ~n_procs:2 ()) with Mc.exec }
        in
        let r = Mc.run net ~spec dual config in
        [
          label;
          string_of_int (List.length r.Mc.mode_switches);
          string_of_int r.Mc.dropped_lo;
          string_of_int r.Mc.hi_misses;
          string_of_int (List.length (List.assoc "act" r.Mc.output_history));
        ])
      [
        ("within C_LO (durations 0.35 x C_HI)", Exec_time.scaled 0.35);
        ("occasional overruns (uniform up to C_HI)", Exec_time.uniform ~seed:3 ~min_fraction:0.3);
      ]
  in
  table buf
    ~header:
      [ "true-duration regime"; "degraded frames /50"; "LO jobs dropped";
        "HI misses"; "HI outputs /50" ]
    rows;
  bline buf
    "  The HI chain never misses and always produces its output; LO work is\n\
    \  shed exactly in the degraded frames."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let microbenchmarks buf =
  section buf "Micro-benchmarks (Bechamel, OLS on monotonic clock)";
  let open Bechamel in
  let fig1_net = Fppn_apps.Fig1.network () in
  let fig1_d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet fig1_net in
  let fig1_sched, _ = schedule_or_fallback ~n_procs:2 fig1_d.Derive.graph in
  let fms_net = Fppn_apps.Fms.reduced () in
  let fms_d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet fms_net in
  let fms_raw = Derive.derive_exn ~reduce:false ~wcet:Fppn_apps.Fms.wcet fms_net in
  let fft_p = Fppn_apps.Fft.default_params in
  let fft_net = Fppn_apps.Fft.network fft_p in
  let tests =
    [
      Test.make ~name:"derive.fig1"
        (Staged.stage (fun () ->
             ignore (Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet fig1_net)));
      Test.make ~name:"derive.fms-812-jobs"
        (Staged.stage (fun () ->
             ignore (Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet fms_net)));
      Test.make ~name:"transitive-reduction.fms"
        (Staged.stage (fun () ->
             ignore
               (Rt_util.Digraph.transitive_reduction (Graph.dag fms_raw.Derive.graph))));
      Test.make ~name:"asap-alap-load.fms"
        (Staged.stage (fun () ->
             let times = Analysis.asap_alap fms_d.Derive.graph in
             ignore (Analysis.load ~times fms_d.Derive.graph)));
      Test.make ~name:"list-schedule.fms-m2"
        (Staged.stage (fun () ->
             ignore
               (List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:2
                  fms_d.Derive.graph)));
      Test.make ~name:"zero-delay.fig1-hyperperiod"
        (Staged.stage (fun () ->
             ignore
               (Semantics.run fig1_net (Semantics.invocations ~horizon:(ms 200) fig1_net))));
      Test.make ~name:"engine.fig1-frame-m2"
        (Staged.stage (fun () ->
             ignore
               (Engine.run fig1_net fig1_d fig1_sched
                  (Engine.default_config ~frames:1 ~n_procs:2 ()))));
      Test.make ~name:"timed-automata.fig1-frame-m2"
        (Staged.stage (fun () ->
             ignore
               (Translate.execute
                  (Translate.build fig1_net fig1_d fig1_sched
                     (Engine.default_config ~frames:1 ~n_procs:2 ())))));
      Test.make ~name:"derive+schedule.fft64-scalability"
        (Staged.stage
           (let p64 = { Fppn_apps.Fft.default_params with Fppn_apps.Fft.n = 64 } in
            let net64 = Fppn_apps.Fft.network p64 in
            fun () ->
              let d = Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map p64) net64 in
              ignore
                (List_scheduler.schedule_with ~heuristic:Priority.Alap_edf
                   ~n_procs:4 d.Derive.graph)));
      Test.make ~name:"zero-delay.fft8-frame"
        (Staged.stage (fun () ->
             ignore
               (Semantics.run fft_net (Semantics.invocations ~horizon:(ms 200) fft_net))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"fppn" tests) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with Some (t :: _) -> t | _ -> nan
      in
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Printf.sprintf "%.3f us" (time_ns /. 1e3)
        else Printf.sprintf "%.0f ns" time_ns
      in
      rows := [ name; pretty ] :: !rows)
    results;
  table buf
    ~aligns:[ Table.Left; Table.Right ]
    ~header:[ "benchmark"; "time/run" ]
    (List.sort (fun a b -> compare (List.hd a) (List.hd b)) !rows)

(* ------------------------------------------------------------------ *)
(* Multi-application co-scheduling: fair vs preallocated slots          *)
(* ------------------------------------------------------------------ *)

let cosched_apps () =
  [
    ( "fig1",
      (Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()))
        .Derive.graph );
    ( "automotive",
      (Derive.derive_exn ~wcet:Fppn_apps.Automotive.wcet
         (Fppn_apps.Automotive.network ()))
        .Derive.graph );
    ( "fms",
      (Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.reduced ()))
        .Derive.graph );
  ]

let cosched_study pool buf =
  section buf "Multi-application co-scheduling (fair vs preallocated slots)";
  let graphs = cosched_apps () in
  let apps_named names =
    List.mapi
      (fun i n ->
        { Sched.Cosched.app_name = n; app_priority = i;
          graph = List.assoc n graphs })
      names
  in
  let cases =
    [
      ([ "fig1"; "automotive" ], 2);
      ([ "fig1"; "automotive" ], 4);
      ([ "fig1"; "automotive"; "fms" ], 3);
      ([ "fig1"; "automotive"; "fms" ], 4);
    ]
  in
  let rows =
    Pool.map_list ~chunk:1 pool
      (fun ((names, m), variant) ->
        let apps = apps_named names in
        let result =
          match snd (Sched.Cosched.auto ~variant ~n_procs:m apps) with
          | Some a -> a.Sched.Cosched.result
          | None -> Sched.Cosched.schedule_with ~variant ~n_procs:m apps
        in
        [
          String.concat "+" names;
          string_of_int m;
          Sched.Cosched.variant_to_string variant;
          String.concat " / "
            (List.map
               (fun (r : Sched.Cosched.app_report) ->
                 Printf.sprintf "%g%s"
                   (Rat.to_float r.Sched.Cosched.makespan)
                   (if r.Sched.Cosched.feasible then "" else "!"))
               result.Sched.Cosched.reports);
          Printf.sprintf "%g" (Rat.to_float result.Sched.Cosched.makespan);
          (if result.Sched.Cosched.feasible then "yes" else "no");
        ])
      (List.concat_map
         (fun c -> [ (c, Sched.Cosched.Fair); (c, Sched.Cosched.Slots) ])
         cases)
  in
  table buf
    ~aligns:
      [ Table.Left; Table.Right; Table.Left; Table.Right; Table.Right;
        Table.Right ]
    ~header:
      [ "applications"; "M"; "variant"; "per-app makespan ms (!=miss)";
        "combined ms"; "feasible" ]
    rows;
  (* admission-control corner: the hook rejects before any schedule is
     attempted when Prop. 3.1 already rules the candidate out *)
  let fig1 = apps_named [ "fig1" ] in
  let fms_app =
    { Sched.Cosched.app_name = "fms"; app_priority = 9;
      graph = List.assoc "fms" graphs }
  in
  let verdict m =
    match Sched.Cosched.admit ~n_procs:m ~admitted:fig1 fms_app with
    | Sched.Cosched.Admitted _ -> "admitted"
    | Sched.Cosched.Rejected { reason; _ } -> "rejected: " ^ reason
  in
  bline buf
    (Printf.sprintf
       "  admit fms next to fig1 on M=2: %s\n  admit fms next to fig1 on M=4: %s\n\
       \  Fair shares all M processors (shorter combined makespans); slots\n\
       \  trade makespan for isolation — an app can never displace another."
       (verdict 2) (verdict 4))

(* ------------------------------------------------------------------ *)
(* Experiment driver                                                    *)
(* ------------------------------------------------------------------ *)

let run_experiments pool =
  print_endline "FPPN experiment harness — reproduction of Poplavko et al., DATE 2015";
  (* all paper-reproduction sections are pure in their inputs, so they
     render concurrently; printing keeps the fixed order below *)
  let rendered =
    Pool.map_list ~chunk:1 pool
      (fun f ->
        let buf = Buffer.create 4096 in
        f buf;
        Buffer.contents buf)
      [
        e1_fig3;
        e2_fig4 pool;
        e3_fft pool;
        e4_fms pool;
        e5_determinism pool;
        e6_heuristics pool;
        e7_granularity pool;
        e8_nondeterminism pool;
        latency_analysis;
        rta_section;
        buffer_sizing;
        dimensioning pool;
        exact_gap pool;
        capacity_study pool;
        cosched_study pool;
      ]
  in
  List.iter print_string rendered;
  (* timing-sensitive sections run after the pool is quiet *)
  List.iter
    (fun f ->
      let buf = Buffer.create 4096 in
      f buf;
      print_string (Buffer.contents buf))
    [ ablation_reduction; mixed_criticality; microbenchmarks ];
  print_endline "\nDone. See EXPERIMENTS.md for the paper-vs-measured discussion."

(* ------------------------------------------------------------------ *)
(* Perf-regression harness (--json)                                     *)
(* ------------------------------------------------------------------ *)

(* Hot pipeline stages timed at jobs=1 and jobs=N; medians land in a
   JSON file so successive commits can be diffed.  The jobs=1 numbers
   double as the Rat-sensitive scalar baselines (list scheduling, exact
   search and the engine all run on Rat arithmetic). *)

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted -> List.nth sorted (List.length sorted / 2)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let jfloat f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let jvariant ~jobs (runs, med) =
  Printf.sprintf "{\"jobs\": %d, \"runs\": [%s], \"median\": %s}" jobs
    (String.concat ", " (List.map jfloat runs))
    (jfloat med)

(* variant with the sample distribution spelled out (min and
   interquartile range) — used by the engine stages, whose 5x
   run-to-run spreads made a bare median unreviewable *)
let jdist ~jobs (runs, med) =
  let sorted = List.sort compare runs in
  let nth i = List.nth sorted i in
  let len = List.length sorted in
  let minv = if len = 0 then nan else nth 0 in
  let iqr = if len < 4 then nan else nth (3 * len / 4) -. nth (len / 4) in
  Printf.sprintf
    "{\"jobs\": %d, \"runs\": [%s], \"median\": %s, \"min\": %s, \"iqr\": %s}"
    jobs
    (String.concat ", " (List.map jfloat runs))
    (jfloat med) (jfloat minv) (jfloat iqr)

(* run-to-run spread of a sample list, as a fraction of the median *)
let spread (runs, med) =
  match runs with
  | [] -> nan
  | r :: rest ->
    let mn = List.fold_left Float.min r rest
    and mx = List.fold_left Float.max r rest in
    if med > 0.0 then (mx -. mn) /. med else nan

let safe_div a b = if b > 0.0 then a /. b else nan

(* --- JSON reader for --gate -------------------------------------------- *)
(* The baseline file is read back through the shared writer/reader the
   harness also emits with, so the gate can never disagree with the
   emitter about escaping or number formats. *)

module Json = Rt_util.Json

(* How a stage's numbers may be compared across harness runs:
   rates (cases/s, jobs/s) are budget-invariant, [`Seconds_stable]
   stages time the same workload under --smoke and full runs, and
   [`Seconds_budgeted] stages shrink their workload under --smoke, so
   their absolute times only compare against a baseline of the same
   kind. *)
let run_gate ~smoke ~alloc
    ~(stages :
       (string
       * [ `Rate | `Seconds_stable | `Seconds_budgeted ]
       * (float list * float))
       list) baseline_path =
  let text =
    try In_channel.with_open_text baseline_path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "gate: cannot read baseline: %s\n" msg;
      exit 2
  in
  let base =
    try Json.parse text
    with Json.Malformed msg ->
      Printf.eprintf "gate: %s is not valid JSON: %s\n" baseline_path msg;
      exit 2
  in
  let base_smoke =
    Option.bind (Json.member "smoke" base) Json.as_bool
    |> Option.value ~default:false
  in
  let base_stages =
    match Json.member "stages" base with Some (Json.Arr l) -> l | _ -> []
  in
  let find_stage name =
    List.find_opt
      (fun s ->
        match Option.bind (Json.member "name" s) Json.as_string with
        | Some n -> String.equal n name
        | None -> false)
      base_stages
  in
  let tolerance = 0.20 in
  (* The host CPU settles into one of two persistent speed modes ~25%
     apart, and the engine stage resolves in microseconds — far too
     fast to straddle both modes — so a fast-mode baseline read back
     in slow mode sits right at a 0.80x ratio no matter how stable the
     per-mode median is.  That stage gets headroom for the mode delta;
     the deterministic allocation check below still catches the
     classic engine regressions (allocation creep) at any speed. *)
  let tolerance_for name =
    if
      String.equal name "engine-sim-fig1-m2"
      || String.equal name "engine-sharded-m4"
    then 0.35
    else tolerance
  in
  let failures = ref 0 in
  Printf.printf "gate: comparing against %s (tolerance %d%%)\n" baseline_path
    (int_of_float (tolerance *. 100.0));
  List.iter
    (fun (name, kind, (runs, _median)) ->
      let comparable =
        match kind with
        | `Rate | `Seconds_stable -> true
        | `Seconds_budgeted -> base_smoke = smoke
      in
      match find_stage name with
      | None -> Printf.printf "  %-24s SKIP (not in baseline)\n" name
      | Some _ when not comparable ->
        Printf.printf "  %-24s SKIP (budget differs between smoke and full runs)\n"
          name
      | Some s -> (
        let base_median =
          Option.bind (Json.member "jobs1" s) (Json.member "median")
          |> Fun.flip Option.bind Json.as_float
        in
        match base_median with
        | None | Some 0.0 ->
          Printf.printf "  %-24s SKIP (no jobs1 median in baseline)\n" name
        | Some b ->
          (* median, not best-of: stages now pin their iteration counts
             and warm up before timing, so the median is stable and a
             best-of comparison would only hide real regressions *)
          let higher = kind = `Rate in
          let m = median runs in
          let ratio = if higher then m /. b else b /. m in
          let tol = tolerance_for name in
          let ok = ratio >= 1.0 -. tol in
          if not ok then incr failures;
          Printf.printf "  %-24s %s baseline %.3f, median %.3f (%.2fx%s)\n" name
            (if ok then "ok  " else "FAIL")
            b m (m /. b)
            (if tol <> tolerance then
               Printf.sprintf ", tolerance %d%%" (int_of_float (tol *. 100.0))
             else "")))
    stages;
  (* allocation regression: the engine's steady-frame loop must not
     allocate — measured on a network whose bodies allocate nothing, so
     the budget only covers measurement crumbs, not real allocation *)
  let steady_frame_bytes, alloc_budget = alloc in
  let alloc_ok = steady_frame_bytes <= alloc_budget in
  if not alloc_ok then incr failures;
  Printf.printf "  %-24s %s %.1f bytes/steady frame (budget %.0f)\n"
    "engine-allocation"
    (if alloc_ok then "ok  " else "FAIL")
    steady_frame_bytes alloc_budget;
  if !failures > 0 then begin
    Printf.printf "gate: %d check(s) failed (tolerance %d%%)\n" !failures
      (int_of_float (tolerance *. 100.0));
    exit 1
  end
  else print_endline "gate: no perf regression"

let run_perf ~pool ~smoke ?gate ~jobs_requested path =
  let jobs = Pool.jobs pool in
  let reps = if smoke then 1 else 3 in
  Printf.printf "perf harness: %d repetition(s) per stage, jobs=1 vs jobs=%d%s\n"
    reps jobs
    (if smoke then " (smoke)" else "");
  let measure_n n f =
    let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f () :: acc) in
    let runs = go 0 [] in
    (runs, median runs)
  in
  let measure f = measure_n reps f in
  (* Rate stages feed the regression gate, so they keep the same
     workload in smoke and full modes (their rates stay comparable
     across baselines) and always sample three runs — the gate takes
     the best, which a 1-CPU container's noise would otherwise fail. *)
  let measure_rate f = measure_n 3 f in
  (* stage 1: fuzz campaign throughput, cases/s from the report's own
     wall clock — the same timing source the report exposes *)
  let fuzz_config = { Fppn_fuzz.Campaign.default_config with budget = 40 } in
  let last1 = ref None and lastn = ref None in
  let fuzz_rate keep jobs =
    let r = Fppn_fuzz.Campaign.run ~jobs fuzz_config in
    keep := Some r;
    Fppn_fuzz.Report.cases_per_s r
  in
  let fuzz1 = measure_rate (fun () -> fuzz_rate last1 1) in
  let steals0 = Pool.steals () in
  let fuzzn = measure (fun () -> fuzz_rate lastn jobs) in
  (* steal count across the jobsN runs: proof the work-stealing pool
     actually redistributed cases, not just that N domains existed *)
  let fuzz_steals = Pool.steals () - steals0 in
  let fuzz_deterministic =
    match (!last1, !lastn) with
    | Some a, Some b ->
      String.equal
        (Fppn_fuzz.Report.to_json (Fppn_fuzz.Report.normalize_timing a))
        (Fppn_fuzz.Report.to_json (Fppn_fuzz.Report.normalize_timing b))
    | _ -> false
  in
  Printf.printf
    "  fuzz-campaign: %.1f cases/s (jobs=1) vs %.1f cases/s (jobs=%d), %s, \
     %d steals\n"
    (snd fuzz1) (snd fuzzn) jobs
    (if fuzz_deterministic then "reports identical" else "REPORTS DIFFER")
    fuzz_steals;
  (* stage 2: heuristic-portfolio list scheduling on the 812-job FMS *)
  let fms_g =
    (Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.reduced ()))
      .Derive.graph
  in
  let auto1 =
    measure (fun () ->
        snd (timed (fun () -> ignore (List_scheduler.auto ~n_procs:2 fms_g))))
  in
  let auton =
    measure (fun () ->
        snd (timed (fun () -> ignore (List_scheduler.auto ~pool ~n_procs:2 fms_g))))
  in
  Printf.printf "  list-auto-fms-m2: %.3f s (jobs=1) vs %.3f s (jobs=%d)\n"
    (snd auto1) (snd auton) jobs;
  (* stage 3: exact branch and bound on a random graph *)
  let exact_g =
    let params =
      { Fppn_apps.Randgen.default_params with
        seed = 101; n_periodic = 4; n_sporadic = 1 }
    in
    let net = Fppn_apps.Randgen.network params in
    let wcet =
      Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 8) (Derive.const_wcet Rat.one)
        net
    in
    (Derive.derive_exn ~wcet net).Derive.graph
  in
  let node_budget = if smoke then 20_000 else 300_000 in
  let exact1 =
    measure (fun () ->
        snd
          (timed (fun () ->
               ignore (Sched.Exact.solve ~node_budget ~n_procs:2 exact_g))))
  in
  let exactn =
    measure (fun () ->
        snd
          (timed (fun () ->
               ignore (Sched.Exact.solve ~pool ~node_budget ~n_procs:2 exact_g))))
  in
  Printf.printf "  exact-solve-random-m2: %.3f s (jobs=1) vs %.3f s (jobs=%d)\n"
    (snd exact1) (snd exactn) jobs;
  (* stage 4: engine simulation throughput (jobs executed per second)
     through the compiled tick core — constant durations and no
     sporadic stamps, so the steady-frame replay path is exercised.
     Each sample pins the iteration count and times the whole batch
     after one unmeasured warmup run (which compiles the plan and
     populates the engine pools): single 20µs runs measured one clock
     pair at a time produced 5x run-to-run spreads on this box. *)
  let fig1 = Fppn_apps.Fig1.network () in
  let fig1_d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet fig1 in
  let fig1_sched, _ = schedule_or_fallback ~n_procs:2 fig1_d.Derive.graph in
  let frames = 40 in
  let engine_iters = 32 in
  let engine_cfg = Engine.default_config ~frames ~n_procs:2 () in
  let engine_rate () =
    ignore (Engine.run fig1 fig1_d fig1_sched engine_cfg);
    let executed = ref 0 in
    let (), dt =
      timed (fun () ->
          for _ = 1 to engine_iters do
            let r = Engine.run fig1 fig1_d fig1_sched engine_cfg in
            executed := !executed + r.Engine.stats.Exec_trace.executed
          done)
    in
    safe_div (float_of_int !executed) dt
  in
  let engine1 = measure_n 5 engine_rate in
  (* allocation probe for the gate: bytes allocated per executed job on
     the fig1 workload, and the engine's own steady-frame allocation
     measured on a network whose job bodies allocate nothing — the
     replay loop is required to add zero bytes per frame on top of
     whatever the bodies themselves allocate *)
  let alloc_per_run net d sched cfg =
    ignore (Engine.run net d sched cfg);
    let k = 100 in
    let a0 = Gc.allocated_bytes () in
    for _ = 1 to k do
      ignore (Engine.run net d sched cfg)
    done;
    (Gc.allocated_bytes () -. a0) /. float_of_int k
  in
  let engine_bytes_per_job =
    let per_run = alloc_per_run fig1 fig1_d fig1_sched engine_cfg in
    let executed =
      (Engine.run fig1 fig1_d fig1_sched engine_cfg).Engine.stats
        .Exec_trace.executed
    in
    per_run /. float_of_int (max 1 executed)
  in
  let steady_frame_bytes =
    let noop = Fppn_apps.Alloc_probe.network () in
    let d = Derive.derive_exn ~wcet:Fppn_apps.Alloc_probe.wcet noop in
    let sched, _ = schedule_or_fallback ~n_procs:2 d.Derive.graph in
    let at frames =
      alloc_per_run noop d sched (Engine.default_config ~frames ~n_procs:2 ())
    in
    let lo = 4 and hi = 40 in
    (at hi -. at lo) /. float_of_int (hi - lo)
  in
  Printf.printf
    "  engine-sim-fig1-m2: %.0f jobs/s (jobs=1, %d frames x %d iterations, \
     %.1f bytes/job, %.1f engine bytes/steady frame)\n"
    (snd engine1) frames engine_iters engine_bytes_per_job steady_frame_bytes;
  (* stage 5: observability overhead on the same engine workload —
     tracing fully off, spans only, spans + metrics.  The off variant
     re-times the exact engine1 configuration inside this run, so the
     three variants are apples-to-apples regardless of machine noise
     between runs.  Not gated: the overhead ratio is informational.
     Best-of-5 with median reporting: the sub-second engine runs showed
     up to 5x run-to-run variance with 3 samples (ROADMAP item 4), and
     the reported overhead percentages were mush.  Five runs cost
     little here and the median is what the JSON exposes. *)
  let measure_stable f = measure_n 5 f in
  Fppn_obs.Trace.set_enabled false;
  Fppn_obs.Metrics.set_enabled false;
  let trace_off = measure_stable engine_rate in
  Fppn_obs.Trace.set_enabled true;
  let trace_spans =
    measure_stable (fun () ->
        Fppn_obs.Trace.reset ();
        engine_rate ())
  in
  Fppn_obs.Metrics.set_enabled true;
  let trace_full =
    measure_stable (fun () ->
        Fppn_obs.Trace.reset ();
        engine_rate ())
  in
  Fppn_obs.Trace.set_enabled false;
  Fppn_obs.Metrics.set_enabled false;
  Fppn_obs.Trace.reset ();
  Fppn_obs.Metrics.reset ();
  let pct_slower v = 100.0 *. (1.0 -. safe_div v (snd trace_off)) in
  Printf.printf
    "  engine-trace-overhead: %.0f jobs/s off, %.0f spans (%+.1f%%), %.0f \
     spans+metrics (%+.1f%%), spread %.0f%%/%.0f%%/%.0f%%\n"
    (snd trace_off) (snd trace_spans)
    (-.pct_slower (snd trace_spans))
    (snd trace_full)
    (-.pct_slower (snd trace_full))
    (100.0 *. spread trace_off)
    (100.0 *. spread trace_spans)
    (100.0 *. spread trace_full);
  (* stage 6: multi-application co-scheduling (heuristic portfolio over
     the fms+automotive pair on M=4) — throughput of both variants, plus
     the makespan each one achieves so BENCH.json tracks schedule
     quality alongside speed *)
  let co_apps =
    [
      { Sched.Cosched.app_name = "fms"; app_priority = 0; graph = fms_g };
      { Sched.Cosched.app_name = "automotive"; app_priority = 1;
        graph =
          (Derive.derive_exn ~wcet:Fppn_apps.Automotive.wcet
             (Fppn_apps.Automotive.network ()))
            .Derive.graph };
    ]
  in
  let co_result variant =
    match snd (Sched.Cosched.auto ~variant ~n_procs:4 co_apps) with
    | Some a -> a.Sched.Cosched.result
    | None -> Sched.Cosched.schedule_with ~variant ~n_procs:4 co_apps
  in
  let co_stage variant =
    let t1 =
      measure (fun () ->
          snd
            (timed (fun () ->
                 ignore (Sched.Cosched.auto ~variant ~n_procs:4 co_apps))))
    in
    let tn =
      measure (fun () ->
          snd
            (timed (fun () ->
                 ignore (Sched.Cosched.auto ~pool ~variant ~n_procs:4 co_apps))))
    in
    (t1, tn, co_result variant)
  in
  let cofair1, cofairn, cofair = co_stage Sched.Cosched.Fair in
  let coslot1, coslotn, coslot = co_stage Sched.Cosched.Slots in
  let co_extra (r : Sched.Cosched.t) =
    [
      Printf.sprintf "\"makespan_ms\": %s"
        (jfloat (Rat.to_float r.Sched.Cosched.makespan));
      Printf.sprintf "\"feasible\": %b" r.Sched.Cosched.feasible;
    ]
  in
  Printf.printf
    "  cosched-fair-m4: %.3f s (jobs=1) vs %.3f s (jobs=%d), makespan %g ms\n"
    (snd cofair1) (snd cofairn) jobs
    (Rat.to_float cofair.Sched.Cosched.makespan);
  Printf.printf
    "  cosched-slots-m4: %.3f s (jobs=1) vs %.3f s (jobs=%d), makespan %g ms\n"
    (snd coslot1) (snd coslotn) jobs
    (Rat.to_float coslot.Sched.Cosched.makespan);
  (* stage 7: sharded engine on a large Randgen network (2·10^4
     periodic processes, M=4) — the sequential compiled core versus
     Engine.run_sharded with one shard per processor, both reported as
     jobs/s like stage 4.  At 20000 jobs per hyperperiod the instance
     sits beyond the old 16384-job closure cap: only the quotient-level
     certificate lets the sharded path engage at all.  The wcet scale
     keeps every duration at one tick of the network's timebase, so
     each frame fits its 100 ms budget on 4 processors and the sharded
     preconditions (fixed durations >= 1 tick, no per-access cost)
     hold.  Metrics are enabled around the sharded runs so the JSON
     records that the sharded path itself engaged — a result that
     silently measured the sequential fallback would gate on the wrong
     code path. *)
  let shard_procs = 4 in
  let shard_n_periodic = 20_000 in
  let shard_net, shard_d, shard_sched =
    let params =
      { Fppn_apps.Randgen.default_params with
        seed = 7;
        n_periodic = shard_n_periodic;
        n_sporadic = 0;
        periods = [ 100 ];
        channel_density = 3e-4 }
    in
    let net = Fppn_apps.Randgen.network params in
    let wcet =
      Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 100_000)
        (Derive.const_wcet Rat.one) net
    in
    let d = Derive.derive_exn ~wcet net in
    (* the heuristic portfolio would price every priority order on a
       10^4-job graph; one ALAP/EDF pass is enough for a throughput
       workload *)
    let sched =
      List_scheduler.schedule_with ~heuristic:Priority.Alap_edf
        ~n_procs:shard_procs d.Derive.graph
    in
    (net, d, sched)
  in
  let shard_iters = 4 in
  let shard_cfg =
    Engine.default_config ~frames:4 ~n_procs:shard_procs ()
  in
  let shard_rate run =
    ignore (run ());
    let executed = ref 0 in
    let (), dt =
      timed (fun () ->
          for _ = 1 to shard_iters do
            let r = run () in
            executed := !executed + r.Engine.stats.Exec_trace.executed
          done)
    in
    safe_div (float_of_int !executed) dt
  in
  let shard1 =
    measure_rate (fun () ->
        shard_rate (fun () -> Engine.run shard_net shard_d shard_sched shard_cfg))
  in
  let metrics_were = Fppn_obs.Metrics.enabled () in
  Fppn_obs.Metrics.set_enabled true;
  Fppn_obs.Metrics.reset ();
  let shardn =
    measure_rate (fun () ->
        shard_rate (fun () ->
            Engine.run_sharded ~shards:shard_procs shard_net shard_d shard_sched
              shard_cfg))
  in
  let cval name =
    Fppn_obs.Metrics.counter_value (Fppn_obs.Metrics.counter name)
  in
  let shard_runs = cval "engine.sharded_runs" in
  let shard_fallbacks = cval "engine.shard_fallbacks" in
  let shard_msgs = cval "engine.xshard_messages" in
  let shard_cut =
    Fppn_obs.Metrics.gauge_value (Fppn_obs.Metrics.gauge "engine.shard_cut_edges")
  in
  Fppn_obs.Metrics.set_enabled metrics_were;
  Fppn_obs.Metrics.reset ();
  Printf.printf
    "  engine-sharded-m4: %.0f jobs/s sequential vs %.0f jobs/s sharded \
     (K=%d, %d processes, %d sharded runs / %d fallbacks, %d cross-shard \
     msgs, cut %.0f edges)\n"
    (snd shard1) (snd shardn) shard_procs shard_n_periodic shard_runs
    shard_fallbacks shard_msgs shard_cut;
  (* stage 8: multi-tenant service throughput — 200 small tenants
     co-resident on M=4 behind MPR admission, scripted sporadic events
     pushed through the MPSC queue each epoch, rate = tenant engine
     jobs per second across the epoch loop.  Same workload in smoke and
     full modes (rate stages stay gate-comparable). *)
  let svc_tenants = 200 in
  let svc_procs = 4 in
  let svc =
    Fppn_service.Service.create ~queue_capacity:8192 ~procs:svc_procs
      ~frames:2 ()
  in
  let svc_rejected = ref 0 in
  for i = 0 to svc_tenants - 1 do
    let params =
      {
        Fppn_apps.Randgen.seed = 1000 + (7919 * i);
        n_periodic = 2;
        n_sporadic = 1;
        periods = [ 50; 100 ];
        channel_density = 0.4;
        max_burst = 2;
      }
    in
    let net = Fppn_apps.Randgen.network params in
    let wcet =
      Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 2000)
        (Derive.const_wcet Rat.one) net
    in
    match
      Fppn_service.Service.register svc ~name:(Printf.sprintf "t%03d" i) ~wcet
        net
    with
    | Ok _ -> ()
    | Error _ -> incr svc_rejected
  done;
  let svc_admitted = List.length (Fppn_service.Service.tenants svc) in
  let svc_targets =
    Array.of_list
      (List.filter_map
         (fun ten ->
           match Fppn_service.Tenant.sporadic_events ten with
           | [] -> None
           | sp ->
             let hp_ms =
               int_of_float
                 (Rat.to_float (Fppn_service.Tenant.hyperperiod ten))
             in
             Some
               ( ten.Fppn_service.Tenant.name,
                 Array.of_list (List.map fst sp),
                 max 1 (hp_ms * 2) ))
         (Fppn_service.Service.tenants svc))
  in
  let svc_epoch_events = 1024 in
  let svc_submit seed =
    let prng = Rt_util.Prng.create seed in
    for _ = 1 to svc_epoch_events do
      let tname, sp_names, horizon_ms =
        svc_targets.(Rt_util.Prng.int prng (Array.length svc_targets))
      in
      let process = sp_names.(Rt_util.Prng.int prng (Array.length sp_names)) in
      let stamp = Rat.of_int (Rt_util.Prng.int prng horizon_ms) in
      ignore (Fppn_service.Service.submit svc ~tenant:tname ~process ~stamp)
    done
  in
  let svc_iters = 4 in
  let svc_events_consumed = ref 0 in
  let svc_rate pool_opt =
    (* one unmeasured warmup epoch compiles every tenant's engine plan *)
    svc_submit 17;
    ignore (Fppn_service.Service.run_epoch ?pool:pool_opt svc);
    let jobs_done = ref 0 in
    let (), dt =
      timed (fun () ->
          for e = 1 to svc_iters do
            svc_submit (31 * e);
            let r = Fppn_service.Service.run_epoch ?pool:pool_opt svc in
            jobs_done := !jobs_done + r.Fppn_service.Service.jobs_executed;
            svc_events_consumed :=
              !svc_events_consumed + r.Fppn_service.Service.events_consumed
          done)
    in
    safe_div (float_of_int !jobs_done) dt
  in
  let svc1 = measure_rate (fun () -> svc_rate None) in
  let svcn = measure_rate (fun () -> svc_rate (Some pool)) in
  let svc_oracle =
    List.for_all snd (Fppn_service.Service.verify ~pool svc)
  in
  Printf.printf
    "  service-mixed-m4: %.0f jobs/s (jobs=1) vs %.0f jobs/s (jobs=%d), %d/%d \
     tenants admitted, oracle %s\n"
    (snd svc1) (snd svcn) jobs svc_admitted svc_tenants
    (if svc_oracle then "ok" else "MISMATCH");
  let stage ~name ~metric ~higher_is_better ?speedup ?extra variants =
    let fields =
      [
        Printf.sprintf "\"name\": \"%s\"" name;
        Printf.sprintf "\"metric\": \"%s\"" metric;
        Printf.sprintf "\"higher_is_better\": %b" higher_is_better;
      ]
      @ List.map (fun (key, v) -> Printf.sprintf "\"%s\": %s" key v) variants
      @ (match speedup with
        | None -> []
        | Some s -> [ Printf.sprintf "\"speedup\": %s" (jfloat s) ])
      @ match extra with None -> [] | Some kvs -> kvs
    in
    "    {" ^ String.concat ", " fields ^ "}"
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"schema\": \"fppn-bench/1\",";
        Printf.sprintf "  \"smoke\": %b," smoke;
        Printf.sprintf "  \"jobs\": %d," jobs;
        Printf.sprintf "  \"jobs_requested\": %d," jobs_requested;
        Printf.sprintf "  \"recommended_domains\": %d," (Pool.default_jobs ());
        Printf.sprintf "  \"repetitions\": %d," reps;
        "  \"stages\": [";
        String.concat ",\n"
          [
            stage ~name:"fuzz-campaign" ~metric:"cases_per_s"
              ~higher_is_better:true
              ~speedup:(safe_div (snd fuzzn) (snd fuzz1))
              ~extra:
                [
                  Printf.sprintf "\"deterministic\": %b" fuzz_deterministic;
                  Printf.sprintf "\"steals\": %d" fuzz_steals;
                ]
              [
                ("jobs1", jvariant ~jobs:1 fuzz1);
                ("jobsN", jvariant ~jobs fuzzn);
              ];
            stage ~name:"list-auto-fms-m2" ~metric:"seconds"
              ~higher_is_better:false
              ~speedup:(safe_div (snd auto1) (snd auton))
              [
                ("jobs1", jvariant ~jobs:1 auto1);
                ("jobsN", jvariant ~jobs auton);
              ];
            stage ~name:"exact-solve-random-m2" ~metric:"seconds"
              ~higher_is_better:false
              ~speedup:(safe_div (snd exact1) (snd exactn))
              [
                ("jobs1", jvariant ~jobs:1 exact1);
                ("jobsN", jvariant ~jobs exactn);
              ];
            stage ~name:"engine-sim-fig1-m2" ~metric:"jobs_per_s"
              ~higher_is_better:true
              ~extra:
                [
                  Printf.sprintf "\"iterations\": %d" engine_iters;
                  Printf.sprintf "\"bytes_per_job\": %s"
                    (jfloat engine_bytes_per_job);
                  Printf.sprintf "\"steady_frame_bytes\": %s"
                    (jfloat steady_frame_bytes);
                ]
              [ ("jobs1", jdist ~jobs:1 engine1) ];
            stage ~name:"engine-trace-overhead" ~metric:"jobs_per_s"
              ~higher_is_better:true
              ~extra:
                [
                  Printf.sprintf "\"iterations\": %d" engine_iters;
                  Printf.sprintf "\"spread_off\": %s"
                    (jfloat (spread trace_off));
                ]
              [
                ("off", jdist ~jobs:1 trace_off);
                ("spans", jdist ~jobs:1 trace_spans);
                ("spans_metrics", jdist ~jobs:1 trace_full);
              ];
            stage ~name:"cosched-fair-m4" ~metric:"seconds"
              ~higher_is_better:false
              ~speedup:(safe_div (snd cofair1) (snd cofairn))
              ~extra:(co_extra cofair)
              [
                ("jobs1", jvariant ~jobs:1 cofair1);
                ("jobsN", jvariant ~jobs cofairn);
              ];
            stage ~name:"cosched-slots-m4" ~metric:"seconds"
              ~higher_is_better:false
              ~speedup:(safe_div (snd coslot1) (snd coslotn))
              ~extra:(co_extra coslot)
              [
                ("jobs1", jvariant ~jobs:1 coslot1);
                ("jobsN", jvariant ~jobs coslotn);
              ];
            stage ~name:"engine-sharded-m4" ~metric:"jobs_per_s"
              ~higher_is_better:true
              ~speedup:(safe_div (snd shardn) (snd shard1))
              ~extra:
                [
                  Printf.sprintf "\"processes\": %d" shard_n_periodic;
                  Printf.sprintf "\"shards\": %d" shard_procs;
                  Printf.sprintf "\"iterations\": %d" shard_iters;
                  Printf.sprintf "\"sharded_runs\": %d" shard_runs;
                  Printf.sprintf "\"fallbacks\": %d" shard_fallbacks;
                  Printf.sprintf "\"xshard_messages\": %d" shard_msgs;
                  Printf.sprintf "\"cut_edges\": %s" (jfloat shard_cut);
                ]
              [
                ("jobs1", jdist ~jobs:1 shard1);
                ("shardsK", jdist ~jobs:shard_procs shardn);
              ];
            stage ~name:"service-mixed-m4" ~metric:"jobs_per_s"
              ~higher_is_better:true
              ~speedup:(safe_div (snd svcn) (snd svc1))
              ~extra:
                [
                  Printf.sprintf "\"tenants\": %d" svc_tenants;
                  Printf.sprintf "\"admitted\": %d" svc_admitted;
                  Printf.sprintf "\"rejected\": %d" !svc_rejected;
                  Printf.sprintf "\"procs\": %d" svc_procs;
                  Printf.sprintf "\"epochs_per_sample\": %d" svc_iters;
                  Printf.sprintf "\"events_per_epoch\": %d" svc_epoch_events;
                  Printf.sprintf "\"events_consumed\": %d" !svc_events_consumed;
                  Printf.sprintf "\"oracle\": %b" svc_oracle;
                ]
              [
                ("jobs1", jdist ~jobs:1 svc1);
                ("jobsN", jdist ~jobs svcn);
              ];
          ];
        "  ]";
        "}";
        "";
      ]
  in
  Runtime.Export.write_file path json;
  Printf.printf "wrote %s\n" path;
  Option.iter
    (run_gate ~smoke
       ~alloc:(steady_frame_bytes, 64.0)
       ~stages:
         [
           ("fuzz-campaign", `Rate, fuzz1);
           ("list-auto-fms-m2", `Seconds_stable, auto1);
           ("exact-solve-random-m2", `Seconds_budgeted, exact1);
           ("engine-sim-fig1-m2", `Rate, engine1);
           ("cosched-fair-m4", `Seconds_stable, cofair1);
           ("cosched-slots-m4", `Seconds_stable, coslot1);
           ("engine-sharded-m4", `Rate, shard1);
           ("service-mixed-m4", `Rate, svc1);
         ])
    gate

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: main.exe [--jobs N] [--json FILE] [--smoke] [--gate BASELINE]\n\
     \  --jobs N        worker domains for parallel sections/sweeps\n\
     \                  (default: recommended domain count)\n\
     \  --force-domains do not cap --jobs at the recommended domain count\n\
     \                  (the default: rate stages must measure real\n\
     \                  multi-domain pools, even oversubscribed)\n\
     \  --cap-domains   cap --jobs at the recommended domain count\n\
     \  --json FILE     run the perf-regression harness and write FILE\n\
     \  --smoke         tiny budgets / single repetition (with --json)\n\
     \  --gate BASELINE after --json, fail if any stage regressed more\n\
     \                  than 20% against the BASELINE json";
  exit 2

let () =
  let jobs = ref (Pool.default_jobs ()) in
  let force_domains = ref true in
  let json_out = ref None in
  let smoke = ref false in
  let gate = ref None in
  let argc = Array.length Sys.argv in
  let rec parse i =
    if i < argc then
      match Sys.argv.(i) with
      | "--jobs" when i + 1 < argc ->
        (match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse (i + 2)
      | "--json" when i + 1 < argc ->
        json_out := Some Sys.argv.(i + 1);
        parse (i + 2)
      | "--force-domains" ->
        force_domains := true;
        parse (i + 1)
      | "--cap-domains" ->
        force_domains := false;
        parse (i + 1)
      | "--smoke" ->
        smoke := true;
        parse (i + 1)
      | "--gate" when i + 1 < argc ->
        gate := Some Sys.argv.(i + 1);
        parse (i + 2)
      | _ -> usage ()
  in
  parse 1;
  let jobs_requested = !jobs in
  (* rate stages commit their jobsN numbers to BENCH.json, and those
     numbers are meaningless if the pool was silently capped to one
     domain — so honoring --jobs even past the recommended domain
     count is the default, and --cap-domains opts back into capping *)
  let effective =
    if !force_domains then max 1 jobs_requested
    else Pool.clamp_jobs jobs_requested
  in
  if effective <> jobs_requested then
    Printf.printf "note: --jobs %d capped at %d (recommended domain count)\n"
      jobs_requested effective
  else if !force_domains && effective > Pool.clamp_jobs effective then
    Printf.printf
      "note: --force-domains: running %d domains on %d recommended\n" effective
      (Pool.default_jobs ());
  Pool.with_pool ~jobs:effective (fun pool ->
      match !json_out with
      | Some path -> run_perf ~pool ~smoke:!smoke ?gate:!gate ~jobs_requested path
      | None -> run_experiments pool)
