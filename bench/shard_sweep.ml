(* Shard-count sweep backing the EXPERIMENTS.md sharding table.

   Builds the same 10^4-process Randgen network as the bench harness's
   engine-sharded-m4 stage (seed 7, single 100 ms period, channel
   density 3e-4, M = 4) and times Engine.run_sharded at K = 1, 2, 4
   shards against the sequential engine, reporting jobs/s medians plus
   the partition's cut size and per-run cross-shard message count.
   Regenerate the table with

     dune exec bench/shard_sweep.exe

   Results are checked for bit-identity against the sequential run on
   every K before being reported, so a silently-fallback run (which
   would time the wrong code path) shows up as "fallback" instead of a
   number. *)

module Rat = Rt_util.Rat
module Derive = Taskgraph.Derive
module Priority = Sched.Priority
module List_scheduler = Sched.List_scheduler
module Engine = Runtime.Engine
module Exec_trace = Runtime.Exec_trace
module Metrics = Fppn_obs.Metrics

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted -> List.nth sorted (List.length sorted / 2)

let () =
  let n_procs = 4 in
  let n_periodic = 10_000 in
  let params =
    { Fppn_apps.Randgen.default_params with
      seed = 7;
      n_periodic;
      n_sporadic = 0;
      periods = [ 100 ];
      channel_density = 3e-4 }
  in
  let net = Fppn_apps.Randgen.network params in
  let wcet =
    Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 100_000)
      (Derive.const_wcet Rat.one) net
  in
  let d = Derive.derive_exn ~wcet net in
  let sched =
    List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs
      d.Derive.graph
  in
  let cfg = Engine.default_config ~frames:4 ~n_procs () in
  let iters = 4 in
  let reps = 3 in
  let rate run =
    ignore (run ());
    let executed = ref 0 in
    let (), dt =
      timed (fun () ->
          for _ = 1 to iters do
            let r = run () in
            executed := !executed + r.Engine.stats.Exec_trace.executed
          done)
    in
    float_of_int !executed /. dt
  in
  let measure run = median (List.init reps (fun _ -> rate run)) in
  let seq_result = Engine.run net d sched cfg in
  let seq_sig = Engine.signature seq_result in
  let seq = measure (fun () -> Engine.run net d sched cfg) in
  Printf.printf
    "shard sweep: %d processes, %d channels, %d jobs / %d precedence edges \
     per hyperperiod, M=%d, 4 frames x %d iterations, %d reps\n"
    n_periodic
    (List.length (Fppn.Network.channels net))
    (Taskgraph.Graph.n_jobs d.Derive.graph)
    (List.length (Taskgraph.Graph.edges d.Derive.graph))
    n_procs iters reps;
  Printf.printf "  %-10s %14s %10s %12s %10s\n" "variant" "jobs/s" "speedup"
    "xshard msgs" "cut edges";
  Printf.printf "  %-10s %14.0f %10s %12s %10s\n" "sequential" seq "1.00x" "-"
    "-";
  List.iter
    (fun k ->
      Metrics.set_enabled true;
      Metrics.reset ();
      let r = Engine.run_sharded ~shards:k net d sched cfg in
      let identical = Engine.signature r = seq_sig in
      let fallbacks =
        Metrics.counter_value (Metrics.counter "engine.shard_fallbacks")
      in
      let msgs =
        Metrics.counter_value (Metrics.counter "engine.xshard_messages")
      in
      let cut = Metrics.gauge_value (Metrics.gauge "engine.shard_cut_edges") in
      let v =
        measure (fun () -> Engine.run_sharded ~shards:k net d sched cfg)
      in
      Metrics.set_enabled false;
      Metrics.reset ();
      if not identical then
        Printf.printf "  K=%-8d OUTPUT DIFFERS FROM SEQUENTIAL\n" k
      else if k > 1 && fallbacks > 0 then
        Printf.printf "  K=%-8d fallback (sharded preconditions unmet)\n" k
      else
        Printf.printf "  K=%-8d %14.0f %9.2fx %12d %10.0f\n" k v (v /. seq)
          msgs cut)
    [ 1; 2; 4 ]
