(* Differential tests for multi-application co-scheduling (Cosched).

   The load-bearing property: co-scheduling a single application — under
   either variant — is bit-identical to List_scheduler on the same
   graph, so every existing single-app guarantee transfers.  On random
   2-app instances the combined schedule must stay structurally valid,
   per-app slices must agree with the combined schedule, slot
   reservations must be disjoint, the fair makespan must respect the
   Exact.solve lower bound, and pooled evaluation must equal the
   sequential one. *)

module Rat = Rt_util.Rat
module Digraph = Rt_util.Digraph
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Randgen = Fppn_apps.Randgen
module Priority = Sched.Priority
module Static_schedule = Sched.Static_schedule
module List_scheduler = Sched.List_scheduler
module Cosched = Sched.Cosched

let ms = Rat.of_int

let entries_equal a b =
  Static_schedule.n_jobs a = Static_schedule.n_jobs b
  && Static_schedule.n_procs a = Static_schedule.n_procs b
  && List.for_all
       (fun i ->
         Static_schedule.proc a i = Static_schedule.proc b i
         && Rat.equal (Static_schedule.start a i) (Static_schedule.start b i))
       (List.init (Static_schedule.n_jobs a) Fun.id)

let app ?(priority = 0) name graph =
  { Cosched.app_name = name; app_priority = priority; graph }

let fig1_graph () =
  (Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()))
    .Derive.graph

let automotive_graph () =
  (Derive.derive_exn ~wcet:Fppn_apps.Automotive.wcet
     (Fppn_apps.Automotive.network ()))
    .Derive.graph

let random_graph seed =
  let params = { Randgen.default_params with seed; n_periodic = 3; n_sporadic = 1 } in
  let net = Randgen.network params in
  let wcet = Randgen.wcet ~scale:(Rat.make 1 8) (Derive.const_wcet Rat.one) net in
  (Derive.derive_exn ~wcet net).Derive.graph

(* --- disjoint union ----------------------------------------------------- *)

let mk_job id ?(proc = 0) ?(name = "P") a d c =
  {
    Job.id;
    proc;
    proc_name = name;
    k = 1;
    arrival = ms a;
    deadline = ms d;
    wcet = ms c;
    is_server = false;
  }

let test_disjoint_union () =
  let ga =
    let dag = Digraph.create 2 in
    Digraph.add_edge dag 0 1;
    Graph.make [| mk_job 0 ~name:"A" 0 100 10; mk_job 1 ~proc:1 ~name:"B" 0 100 10 |] dag
  in
  let gb = Graph.make [| mk_job 0 ~name:"C" 0 50 5 |] (Digraph.create 1) in
  let u, owner = Graph.disjoint_union ~prefixes:[| "x/"; "y/" |] [ ga; gb ] in
  Alcotest.(check int) "job count" 3 (Graph.n_jobs u);
  Alcotest.(check (list (pair int int))) "owner map"
    [ (0, 0); (0, 1); (1, 0) ]
    (Array.to_list owner);
  Alcotest.(check (list (pair int int))) "edges stay within members"
    [ (0, 1) ] (Graph.edges u);
  Alcotest.(check string) "prefixed name" "y/C" (Graph.job u 2).Job.proc_name;
  (* process indices offset so jobs_of_process stays disjoint *)
  Alcotest.(check int) "second member's process offset" 2 (Graph.job u 2).Job.proc;
  Alcotest.(check bool) "empty list rejected" true
    (try ignore (Graph.disjoint_union []); false
     with Invalid_argument _ -> true)

(* --- single application: bit-identical to List_scheduler ---------------- *)

let test_single_app_identity () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun heuristic ->
          List.iter
            (fun n_procs ->
              let direct = List_scheduler.schedule ~rank:(Priority.rank g heuristic) ~n_procs g in
              List.iter
                (fun variant ->
                  let r =
                    Cosched.schedule_with ~heuristic ~variant ~n_procs
                      [ app name g ]
                  in
                  let label =
                    Printf.sprintf "%s/%s/M=%d/%s" name
                      (Priority.to_string heuristic) n_procs
                      (Cosched.variant_to_string variant)
                  in
                  Alcotest.(check bool)
                    (label ^ ": combined identical") true
                    (entries_equal direct r.Cosched.combined);
                  let rep = List.hd r.Cosched.reports in
                  Alcotest.(check bool)
                    (label ^ ": slice identical") true
                    (entries_equal direct rep.Cosched.schedule);
                  Alcotest.(check bool)
                    (label ^ ": same feasibility") true
                    (rep.Cosched.feasible = Static_schedule.is_feasible g direct))
                [ Cosched.Fair; Cosched.Slots ])
            [ 1; 2; 3 ])
        Priority.all)
    [
      ("fig1", fig1_graph ());
      ("automotive", automotive_graph ());
      ("random", random_graph 11);
    ]

let test_single_app_auto_identity () =
  let g = fig1_graph () in
  let _, direct = List_scheduler.auto ~n_procs:2 g in
  let _, co = Cosched.auto ~variant:Cosched.Fair ~n_procs:2 [ app "fig1" g ] in
  match (direct, co) with
  | Some d, Some c ->
    Alcotest.(check string) "same chosen heuristic"
      (Priority.to_string d.List_scheduler.heuristic)
      (Priority.to_string c.Cosched.heuristic);
    Alcotest.(check bool) "same chosen schedule" true
      (entries_equal d.List_scheduler.schedule c.Cosched.result.Cosched.combined)
  | _ -> Alcotest.fail "fig1 on M=2 must be feasible both ways"

(* --- fair variant semantics --------------------------------------------- *)

let one_job_graph name =
  Graph.make [| mk_job 0 ~name 0 100 25 |] (Digraph.create 1)

let test_fair_priority_dominates () =
  (* two identical single-job apps contending for one processor: the
     higher-priority one starts first, whatever the input order *)
  let a = app ~priority:1 "late" (one_job_graph "L") in
  let b = app ~priority:0 "early" (one_job_graph "E") in
  let r = Cosched.schedule_with ~variant:Cosched.Fair ~n_procs:1 [ a; b ] in
  let find n =
    List.find (fun (x : Cosched.app_report) -> x.Cosched.name = n)
      r.Cosched.reports
  in
  Alcotest.(check bool) "high priority starts at 0" true
    (Rat.equal Rat.zero (Static_schedule.start (find "early").Cosched.schedule 0));
  Alcotest.(check bool) "low priority starts after" true
    (Rat.equal (ms 25) (Static_schedule.start (find "late").Cosched.schedule 0))

let test_slots_validation () =
  Alcotest.(check bool) "more apps than processors rejected" true
    (try
       ignore
         (Cosched.schedule_with ~variant:Cosched.Slots ~n_procs:1
            [ app "a" (one_job_graph "A"); app "b" (one_job_graph "B") ]);
       false
     with Invalid_argument _ -> true)

(* --- admission hook ------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_admit_rejects_on_load () =
  (* fig1 alone needs 2 processors (Prop. 3.1): joining anything on M=1
     is rejected before any schedule is attempted *)
  match
    Cosched.admit ~n_procs:1 ~admitted:[ app "fig1" (fig1_graph ()) ]
      (app ~priority:1 "auto" (automotive_graph ()))
  with
  | Cosched.Admitted _ -> Alcotest.fail "must reject on the load bound"
  | Cosched.Rejected { app = name; reason } ->
    Alcotest.(check string) "candidate named" "auto" name;
    Alcotest.(check bool) "reason cites Prop. 3.1" true
      (contains ~sub:"Prop. 3.1" reason)

let test_admit_accepts_when_feasible () =
  match
    Cosched.admit ~variant:Cosched.Slots ~n_procs:3
      ~admitted:[ app "fig1" (fig1_graph ()) ]
      (app ~priority:1 "auto" (automotive_graph ()))
  with
  | Cosched.Admitted r ->
    Alcotest.(check int) "both applications scheduled" 2
      (List.length r.Cosched.reports);
    Alcotest.(check bool) "all feasible" true r.Cosched.feasible
  | Cosched.Rejected { reason; _ } ->
    Alcotest.fail ("fig1+automotive fits on 3 slots, got: " ^ reason)

let test_admit_rejects_without_slot () =
  match
    Cosched.admit ~variant:Cosched.Slots ~n_procs:2
      ~admitted:[ app "a" (one_job_graph "A"); app "b" (one_job_graph "B") ]
      (app ~priority:2 "c" (one_job_graph "C"))
  with
  | Cosched.Admitted _ -> Alcotest.fail "no third slot exists"
  | Cosched.Rejected { reason; _ } ->
    Alcotest.(check bool) "reason cites the slot shortage" true
      (contains ~sub:"slot" reason)

(* --- JSON sections roundtrip -------------------------------------------- *)

let test_json_roundtrip () =
  let r =
    Cosched.schedule_with ~variant:Cosched.Slots ~n_procs:3
      [ app "fig1" (fig1_graph ()); app ~priority:1 "auto" (automotive_graph ()) ]
  in
  let json = Cosched.to_json r in
  match Sched.Schedule_io.sections_of_json json with
  | Error e -> Alcotest.fail e
  | Ok (variant, n_procs, sections) ->
    Alcotest.(check string) "variant" "slots" variant;
    Alcotest.(check int) "procs" 3 n_procs;
    Alcotest.(check (list string)) "app names" [ "fig1"; "auto" ]
      (List.map (fun s -> s.Sched.Schedule_io.sec_name) sections);
    Alcotest.(check string) "re-serialization is identical" json
      (Sched.Schedule_io.sections_to_json ~variant ~n_procs sections)

let test_json_rejects_garbage () =
  Alcotest.(check bool) "malformed json" true
    (Result.is_error (Sched.Schedule_io.sections_of_json "{"));
  Alcotest.(check bool) "wrong schema" true
    (Result.is_error (Sched.Schedule_io.sections_of_json "{\"schema\":\"nope\"}"))

(* --- QCheck: random 2-app instances -------------------------------------- *)

let qprop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* Tiny applications (<= 8 jobs): 1-2 periodic processes over periods
   whose lcm stays small, optionally joined by a channel. *)
let tiny_app_gen =
  QCheck2.Gen.(
    let* n = int_range 1 2 in
    let* first = int_range 0 2 in
    let* second = int_range 0 2 in
    let* chan = bool in
    return (n, first, second, chan))

let build_tiny label (n, first, second, chan) =
  let all = [| 50; 100; 200 |] in
  let periods =
    if n = 1 then [| all.(first) |] else [| all.(first); all.(second) |]
  in
  let chans =
    if n = 2 && chan then
      [ { Randgen.cw = 0; cr = 1; fifo = true; rev_fp = false; no_fp = false } ]
    else []
  in
  let spec = { Randgen.label; periods; chans; sporadics = [] } in
  let net = Randgen.build_exn spec in
  let wcet = Randgen.wcet ~scale:(Rat.make 1 4) (Derive.const_wcet Rat.one) net in
  (Derive.derive_exn ~wcet net).Derive.graph

let pair_gen =
  QCheck2.Gen.(
    let* ta = tiny_app_gen in
    let* tb = tiny_app_gen in
    let* n_procs = int_range 2 3 in
    let* flip = bool in
    return (ta, tb, n_procs, flip))

let apps_of (ta, tb, _, flip) =
  [
    app ~priority:(if flip then 1 else 0) "a" (build_tiny "appA" ta);
    app ~priority:(if flip then 0 else 1) "b" (build_tiny "appB" tb);
  ]

let slice_matches_combined (r : Cosched.t) =
  Array.for_all Fun.id
    (Array.mapi
       (fun gid (ai, li) ->
         let rep = List.nth r.Cosched.reports ai in
         let e = Static_schedule.entry r.Cosched.combined gid in
         Static_schedule.proc rep.Cosched.schedule li = e.Static_schedule.proc
         && Rat.equal
              (Static_schedule.start rep.Cosched.schedule li)
              e.Static_schedule.start)
       r.Cosched.owner)

let prop_cosched_pairs =
  qprop "2-app co-schedules: structure, slices, slots, exact bound" pair_gen
    (fun ((_, _, n_procs, _) as case) ->
      let apps = apps_of case in
      List.for_all
        (fun variant ->
          let r = Cosched.schedule_with ~variant ~n_procs apps in
          (* arrival/precedence/mutual-exclusion hold by construction *)
          List.for_all
            (function
              | Static_schedule.Deadline _ -> true
              | Static_schedule.Arrival _ | Static_schedule.Precedence _
              | Static_schedule.Overlap _ -> false)
            (Static_schedule.check r.Cosched.union r.Cosched.combined)
          && slice_matches_combined r
          &&
          match variant with
          | Cosched.Fair ->
            List.for_all
              (fun (rep : Cosched.app_report) -> rep.Cosched.slots = [])
              r.Cosched.reports
          | Cosched.Slots ->
            let all =
              List.concat_map
                (fun (rep : Cosched.app_report) -> rep.Cosched.slots)
                r.Cosched.reports
            in
            List.length all = List.length (List.sort_uniq Int.compare all)
            && List.for_all
                 (fun (rep : Cosched.app_report) ->
                   List.for_all
                     (fun i ->
                       List.mem
                         (Static_schedule.proc rep.Cosched.schedule i)
                         rep.Cosched.slots)
                     (List.init (Static_schedule.n_jobs rep.Cosched.schedule)
                        Fun.id))
                 r.Cosched.reports)
        [ Cosched.Fair; Cosched.Slots ]
      &&
      (* the fair makespan respects the Exact.solve lower bound *)
      let r = Cosched.schedule_with ~variant:Cosched.Fair ~n_procs apps in
      if Graph.n_jobs r.Cosched.union > 12 then true
      else
        let ex = Sched.Exact.solve ~node_budget:200_000 ~n_procs r.Cosched.union in
        match (ex.Sched.Exact.makespan, ex.Sched.Exact.optimal) with
        | Some opt, true -> Rat.(r.Cosched.makespan >= opt)
        | None, true -> not r.Cosched.feasible
        | _, false -> true)

let prop_cosched_pool_equality =
  qprop "2-app auto: jobs=4 equals jobs=1" pair_gen
    (fun ((_, _, n_procs, _) as case) ->
      let apps = apps_of case in
      Rt_util.Pool.with_pool ~jobs:4 (fun pool ->
          List.for_all
            (fun variant ->
              let seq_attempts, seq_best = Cosched.auto ~variant ~n_procs apps in
              let par_attempts, par_best =
                Cosched.auto ~pool ~variant ~n_procs apps
              in
              let attempt_equal (a : Cosched.attempt) (b : Cosched.attempt) =
                a.Cosched.heuristic = b.Cosched.heuristic
                && String.equal
                     (Cosched.to_json a.Cosched.result)
                     (Cosched.to_json b.Cosched.result)
              in
              List.length seq_attempts = List.length par_attempts
              && List.for_all2 attempt_equal seq_attempts par_attempts
              &&
              match (seq_best, par_best) with
              | None, None -> true
              | Some a, Some b -> attempt_equal a b
              | _ -> false)
            [ Cosched.Fair; Cosched.Slots ]))

let () =
  Alcotest.run "cosched"
    [
      ( "union",
        [ Alcotest.test_case "disjoint union" `Quick test_disjoint_union ] );
      ( "differential",
        [
          Alcotest.test_case "single app bit-identical" `Quick
            test_single_app_identity;
          Alcotest.test_case "single app auto" `Quick
            test_single_app_auto_identity;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "fair priority dominates" `Quick
            test_fair_priority_dominates;
          Alcotest.test_case "slots validation" `Quick test_slots_validation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "rejects on load bound" `Quick
            test_admit_rejects_on_load;
          Alcotest.test_case "accepts a feasible pair" `Quick
            test_admit_accepts_when_feasible;
          Alcotest.test_case "rejects without a slot" `Quick
            test_admit_rejects_without_slot;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "properties", [ prop_cosched_pairs; prop_cosched_pool_equality ] );
    ]
