(* Differential tests for the compiled tick-time engine core.

   [Engine.run] compiles the simulation onto an integer tick grid when
   it can; [Engine.run_reference] is the exact rational interpreter the
   seed shipped with.  The two must agree bit-for-bit: same trace
   records (rationals reconstructed from ticks are structurally equal)
   and same channel/output histories, over random workloads covering
   sporadic servers, execution-time jitter and multiple processors.

   Beyond the random differential, targeted tests pin the replay
   machinery's edges: sporadic stamps landing mid-frame must disable
   hyperperiod replay, constant vs. variable durations must flip it on
   and off, >64-process networks must exercise the multi-word hot set,
   and pooled scratch reuse across runs must stay invisible. *)

module Rat = Rt_util.Rat
module Timebase = Rt_util.Timebase
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Derive = Taskgraph.Derive
module List_scheduler = Sched.List_scheduler
module Randgen = Fppn_apps.Randgen
module Metrics = Fppn_obs.Metrics

let qprop name ?(count = 100) ?print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen f)

let ms n = Rat.of_int n

(* --- differential: tick engine == rational reference ----------------- *)

type case = {
  seed : int;
  n_periodic : int;
  n_sporadic : int;
  n_procs : int;
  frames : int;
  exec_kind : int;  (* 0 constant, 1 uniform, 2 scaled *)
}

let case_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 99999 in
    let* n_periodic = int_range 1 6 in
    let* n_sporadic = int_range 0 2 in
    let* n_procs = int_range 1 3 in
    let* frames = int_range 1 6 in
    let+ exec_kind = int_range 0 2 in
    { seed; n_periodic; n_sporadic; n_procs; frames; exec_kind })

let case_print c =
  Printf.sprintf
    "{seed=%d; periodic=%d; sporadic=%d; procs=%d; frames=%d; exec=%d}" c.seed
    c.n_periodic c.n_sporadic c.n_procs c.frames c.exec_kind

(* fresh per run: [Exec_time.uniform] carries PRNG state, and sharing
   one value across both engines would entangle their draw sequences *)
let exec_of c =
  match c.exec_kind with
  | 0 -> Exec_time.constant
  | 1 -> Exec_time.uniform ~seed:(c.seed + 1) ~min_fraction:0.25
  | _ -> Exec_time.scaled 0.5

let wcet_scale = Rat.make 1 25

let run_both c =
  let net =
    Randgen.network
      {
        Randgen.default_params with
        seed = c.seed;
        n_periodic = c.n_periodic;
        n_sporadic = c.n_sporadic;
      }
  in
  let wcet = Randgen.wcet ~scale:wcet_scale (Derive.const_wcet Rat.one) net in
  match Derive.derive ~wcet net with
  | Error _ -> None
  | Ok d -> (
    match snd (List_scheduler.auto ~n_procs:c.n_procs d.Derive.graph) with
    | None -> None
    | Some a ->
      let sched = a.List_scheduler.schedule in
      let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int c.frames) in
      let sporadic =
        Randgen.random_traces ~seed:(c.seed + 7) ~horizon ~density:0.5 net
      in
      let config () =
        {
          (Engine.default_config ~frames:c.frames ~n_procs:c.n_procs ()) with
          Engine.exec = exec_of c;
          sporadic;
        }
      in
      let tick = Engine.run net d sched (config ()) in
      let reference = Engine.run_reference net d sched (config ()) in
      Some (tick, reference))

let identical tick reference =
  List.equal
    (fun (a : Runtime.Exec_trace.record) b -> a = b)
    (Engine.trace tick) (Engine.trace reference)
  && Engine.signature tick = Engine.signature reference
  && tick.Engine.stats = reference.Engine.stats
  && tick.Engine.unhandled_events = reference.Engine.unhandled_events

let prop_differential =
  qprop "tick engine bit-identical to rational reference" ~count:120
    ~print:case_print case_gen
    (fun c ->
      match run_both c with
      | None -> true (* infeasible draw: nothing to compare *)
      | Some (tick, reference) -> identical tick reference)

(* The ISSUE-level acceptance bar, stated on its own: signatures (the
   externally visible output histories) agree on 200 random instances. *)
let prop_signature =
  qprop "signature equality on 200 random instances" ~count:200
    ~print:case_print case_gen
    (fun c ->
      match run_both c with
      | None -> true
      | Some (tick, reference) ->
        Engine.signature tick = Engine.signature reference)

(* --- targeted replay / pooling edges --------------------------------- *)

(* Runs [f] with metrics collection on and returns its result together
   with the final value of counter [name]. *)
let with_counter name f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Metrics.reset ();
  let r = f () in
  let n = Metrics.counter_value (Metrics.counter name) in
  Metrics.set_enabled was;
  (r, n)

let fig1_setup ~n_procs =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  match snd (List_scheduler.auto ~n_procs d.Derive.graph) with
  | Some a -> (net, d, a.List_scheduler.schedule)
  | None -> Alcotest.fail "fig1 unschedulable"

(* Constant durations on a stamp-free run let the engine capture one
   template frame and replay the rest; variable durations must force
   every frame through the event loop.  Both must match the reference. *)
let test_replay_engagement () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config exec =
    { (Engine.default_config ~frames:8 ~n_procs:2 ()) with Engine.exec = exec }
  in
  let tick, replays =
    with_counter "engine.replays" (fun () ->
        Engine.run net d sched (config Exec_time.constant))
  in
  Alcotest.(check int) "constant durations replay" 1 replays;
  let reference = Engine.run_reference net d sched (config Exec_time.constant) in
  Alcotest.(check bool) "replayed run identical" true (identical tick reference);
  let variable () = Exec_time.uniform ~seed:11 ~min_fraction:0.25 in
  let tick, replays =
    with_counter "engine.replays" (fun () ->
        Engine.run net d sched (config (variable ())))
  in
  Alcotest.(check int) "variable durations never replay" 0 replays;
  let reference = Engine.run_reference net d sched (config (variable ())) in
  Alcotest.(check bool)
    "event-loop run identical" true (identical tick reference)

(* A sporadic arrival strictly inside a steady frame (CoefB at t=650,
   frame [600,800)) must disable replay entirely — the stamp changes
   that frame's job set — while the tick event loop still reproduces
   the reference bit-for-bit. *)
let test_midframe_sporadic () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config () =
    {
      (Engine.default_config ~frames:6 ~n_procs:2 ()) with
      Engine.sporadic = [ ("CoefB", [ ms 650 ]) ];
    }
  in
  let tick, replays =
    with_counter "engine.replays" (fun () -> Engine.run net d sched (config ()))
  in
  Alcotest.(check int) "mid-frame stamp disables replay" 0 replays;
  let reference = Engine.run_reference net d sched (config ()) in
  Alcotest.(check bool)
    "sporadic run identical" true (identical tick reference)

(* The compiled core packs ready/running processors into 63-bit hot
   words; networks past 64 processes/processors must spill into the
   second word and still agree with the reference. *)
let test_many_procs () =
  let params =
    {
      Randgen.default_params with
      seed = 4242;
      n_periodic = 70;
      n_sporadic = 0;
      channel_density = 0.03;
    }
  in
  let net = Randgen.network params in
  let wcet = Randgen.wcet ~scale:wcet_scale (Derive.const_wcet Rat.one) net in
  let d = Derive.derive_exn ~wcet net in
  match snd (List_scheduler.auto ~n_procs:70 d.Derive.graph) with
  | None -> Alcotest.fail "70-process draw unschedulable"
  | Some a ->
    let sched = a.List_scheduler.schedule in
    let config = Engine.default_config ~frames:3 ~n_procs:70 () in
    let tick = Engine.run net d sched config in
    let reference = Engine.run_reference net d sched config in
    Alcotest.(check bool)
      ">64-process run identical" true (identical tick reference)

(* Plan, state and scratch pools are reused across runs; a second run
   must be bit-identical to the first, and the first run's lazily
   materialised results must survive the second run overwriting the
   pooled arrays (snapshots must not alias the pools). *)
let test_pooled_reruns () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config = Engine.default_config ~frames:6 ~n_procs:2 () in
  let reference = Engine.run_reference net d sched config in
  let r1 = Engine.run net d sched config in
  let r2 = Engine.run net d sched config in
  Alcotest.(check bool)
    "second pooled run identical" true (identical r2 reference);
  (* force r1's lazy trace/histories only now, after r2 reused the pools *)
  Alcotest.(check bool)
    "earlier results survive a later run" true (identical r1 reference)

(* [Exec_time.profile] exposes per-job durations through
   [Exec_time.durations], so the tick engine compiles it rather than
   falling back; the "engine.frames" counter is only emitted by the
   compiled core, proving which path ran. *)
let test_profile_tick () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config =
    {
      (Engine.default_config ~frames:3 ~n_procs:2 ()) with
      Engine.exec = Exec_time.profile (fun _ -> ms 1);
    }
  in
  let r1, tick_frames =
    with_counter "engine.frames" (fun () -> Engine.run net d sched config)
  in
  Alcotest.(check int) "profile compiles onto tick path" 3 tick_frames;
  let r2 = Engine.run_reference net d sched config in
  Alcotest.(check bool) "profile run identical" true (identical r1 r2)

(* Genuine fallback: a profile that raises for some process hides its
   durations behind the exception, so [Exec_time.durations] degrades to
   [Opaque], tick compilation declines, and [Engine.run] must execute
   the exact rational interpreter — observable as no "engine.frames"
   counter.  The raising process is fig1's sporadic CoefB with no
   stamps configured: its server slots are all skipped, so the
   poisoned profile is never sampled at runtime. *)
let test_rat_fallback () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let profile () =
    Exec_time.profile (fun name -> if name = "CoefB" then raise Exit else ms 1)
  in
  let config exec =
    { (Engine.default_config ~frames:3 ~n_procs:2 ()) with Engine.exec = exec }
  in
  let r1, tick_frames =
    with_counter "engine.frames" (fun () ->
        Engine.run net d sched (config (profile ())))
  in
  Alcotest.(check int) "opaque durations: rational path ran" 0 tick_frames;
  let r2 = Engine.run_reference net d sched (config (profile ())) in
  Alcotest.(check bool) "fallback run identical" true (identical r1 r2)

(* --- Timebase -------------------------------------------------------- *)

let test_timebase_basic () =
  match Timebase.create [ Rat.make 1 3; Rat.make 1 4; Rat.of_int 7 ] with
  | None -> Alcotest.fail "small LCM must be representable"
  | Some tb ->
    Alcotest.(check int) "den = lcm(3,4)" 12 (Timebase.den tb);
    Alcotest.(check int) "ticks 1/3" 4 (Timebase.ticks tb (Rat.make 1 3));
    Alcotest.(check int) "ticks 7" 84 (Timebase.ticks tb (Rat.of_int 7));
    Alcotest.(check bool)
      "roundtrip is structural identity" true
      (Timebase.of_ticks tb 4 = Rat.make 1 3);
    Alcotest.(check bool)
      "1/5 not on the grid" true
      (Timebase.ticks_opt tb (Rat.make 1 5) = None);
    Alcotest.check_raises "ticks raises Inexact off-grid" Timebase.Inexact
      (fun () -> ignore (Timebase.ticks tb (Rat.make 1 5)))

let test_timebase_overflow () =
  (* pairwise-coprime denominators near 2^31: the LCM overflows the
     magnitude cap, and [create] must return None rather than crash *)
  let big = [ 2147483647; 2147483629; 2147483587; 2147483579 ] in
  let times = List.map (fun d -> Rat.make 1 d) big in
  Alcotest.(check bool) "LCM overflow yields None" true
    (Timebase.create times = None);
  (* a representable grid whose horizon does not fit must also decline *)
  match Timebase.create [ Rat.one ] with
  | None -> Alcotest.fail "unit grid must build"
  | Some _ ->
    Alcotest.(check bool)
      "oversized horizon yields None" true
      (Timebase.create ~horizon:(Rat.of_int max_int) [ Rat.one ] = None)

let prop_timebase_roundtrip =
  qprop "of_ticks inverts ticks exactly" ~count:300
    QCheck2.Gen.(
      let* num = int_range (-100000) 100000 in
      let* den = int_range 1 1000 in
      let+ extra = int_range 1 1000 in
      (num, den, extra))
    (fun (num, den, extra) ->
      let r = Rat.make num den in
      match Timebase.create [ r; Rat.make 1 extra ] with
      | None -> true
      | Some tb -> Timebase.of_ticks tb (Timebase.ticks tb r) = r)

let () =
  Alcotest.run "tick_engine"
    [
      ( "differential",
        [
          prop_differential;
          prop_signature;
          Alcotest.test_case "replay engagement" `Quick test_replay_engagement;
          Alcotest.test_case "mid-frame sporadic" `Quick test_midframe_sporadic;
          Alcotest.test_case ">64 processes" `Quick test_many_procs;
          Alcotest.test_case "pooled reruns" `Quick test_pooled_reruns;
          Alcotest.test_case "profile tick-compiles" `Quick test_profile_tick;
          Alcotest.test_case "rational fallback" `Quick test_rat_fallback;
        ] );
      ( "timebase",
        [
          Alcotest.test_case "basic" `Quick test_timebase_basic;
          Alcotest.test_case "overflow" `Quick test_timebase_overflow;
          prop_timebase_roundtrip;
        ] );
    ]
