(* Differential tests for the compiled tick-time engine core.

   [Engine.run] compiles the simulation onto an integer tick grid when
   it can; [Engine.run_reference] is the exact rational interpreter the
   seed shipped with.  The two must agree bit-for-bit: same trace
   records (rationals reconstructed from ticks are structurally equal)
   and same channel/output histories, over random workloads covering
   sporadic servers, execution-time jitter and multiple processors. *)

module Rat = Rt_util.Rat
module Timebase = Rt_util.Timebase
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Derive = Taskgraph.Derive
module List_scheduler = Sched.List_scheduler
module Randgen = Fppn_apps.Randgen

let qprop name ?(count = 100) ?print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen f)

let ms n = Rat.of_int n

(* --- differential: tick engine == rational reference ----------------- *)

type case = {
  seed : int;
  n_periodic : int;
  n_sporadic : int;
  n_procs : int;
  frames : int;
  exec_kind : int;  (* 0 constant, 1 uniform, 2 scaled *)
}

let case_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 99999 in
    let* n_periodic = int_range 1 6 in
    let* n_sporadic = int_range 0 2 in
    let* n_procs = int_range 1 3 in
    let* frames = int_range 1 4 in
    let+ exec_kind = int_range 0 2 in
    { seed; n_periodic; n_sporadic; n_procs; frames; exec_kind })

let case_print c =
  Printf.sprintf
    "{seed=%d; periodic=%d; sporadic=%d; procs=%d; frames=%d; exec=%d}" c.seed
    c.n_periodic c.n_sporadic c.n_procs c.frames c.exec_kind

(* fresh per run: [Exec_time.uniform] carries PRNG state, and sharing
   one value across both engines would entangle their draw sequences *)
let exec_of c =
  match c.exec_kind with
  | 0 -> Exec_time.constant
  | 1 -> Exec_time.uniform ~seed:(c.seed + 1) ~min_fraction:0.25
  | _ -> Exec_time.scaled 0.5

let wcet_scale = Rat.make 1 25

let run_both c =
  let net =
    Randgen.network
      {
        Randgen.default_params with
        seed = c.seed;
        n_periodic = c.n_periodic;
        n_sporadic = c.n_sporadic;
      }
  in
  let wcet = Randgen.wcet ~scale:wcet_scale (Derive.const_wcet Rat.one) net in
  match Derive.derive ~wcet net with
  | Error _ -> None
  | Ok d -> (
    match snd (List_scheduler.auto ~n_procs:c.n_procs d.Derive.graph) with
    | None -> None
    | Some a ->
      let sched = a.List_scheduler.schedule in
      let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int c.frames) in
      let sporadic =
        Randgen.random_traces ~seed:(c.seed + 7) ~horizon ~density:0.5 net
      in
      let config () =
        {
          (Engine.default_config ~frames:c.frames ~n_procs:c.n_procs ()) with
          Engine.exec = exec_of c;
          sporadic;
        }
      in
      let tick = Engine.run net d sched (config ()) in
      let reference = Engine.run_reference net d sched (config ()) in
      Some (tick, reference))

let prop_differential =
  qprop "tick engine bit-identical to rational reference" ~count:120
    ~print:case_print case_gen
    (fun c ->
      match run_both c with
      | None -> true (* infeasible draw: nothing to compare *)
      | Some (tick, reference) ->
        List.equal
          (fun (a : Runtime.Exec_trace.record) b -> a = b)
          tick.Engine.trace reference.Engine.trace
        && Engine.signature tick = Engine.signature reference
        && tick.Engine.stats = reference.Engine.stats
        && tick.Engine.unhandled_events = reference.Engine.unhandled_events)

(* The profile model hides durations behind a closure, so tick
   compilation must decline and the fallback must still be the exact
   reference semantics. *)
let test_profile_fallback () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "fig1 unschedulable"
  in
  let config =
    {
      (Engine.default_config ~frames:3 ~n_procs:2 ()) with
      Engine.exec = Exec_time.profile (fun _ -> ms 1);
    }
  in
  let r1 = Engine.run net d sched config in
  let r2 = Engine.run_reference net d sched config in
  Alcotest.(check bool)
    "profile fallback identical" true
    (r1.Engine.trace = r2.Engine.trace && Engine.signature r1 = Engine.signature r2)

(* --- Timebase -------------------------------------------------------- *)

let test_timebase_basic () =
  match Timebase.create [ Rat.make 1 3; Rat.make 1 4; Rat.of_int 7 ] with
  | None -> Alcotest.fail "small LCM must be representable"
  | Some tb ->
    Alcotest.(check int) "den = lcm(3,4)" 12 (Timebase.den tb);
    Alcotest.(check int) "ticks 1/3" 4 (Timebase.ticks tb (Rat.make 1 3));
    Alcotest.(check int) "ticks 7" 84 (Timebase.ticks tb (Rat.of_int 7));
    Alcotest.(check bool)
      "roundtrip is structural identity" true
      (Timebase.of_ticks tb 4 = Rat.make 1 3);
    Alcotest.(check bool)
      "1/5 not on the grid" true
      (Timebase.ticks_opt tb (Rat.make 1 5) = None);
    Alcotest.check_raises "ticks raises Inexact off-grid" Timebase.Inexact
      (fun () -> ignore (Timebase.ticks tb (Rat.make 1 5)))

let test_timebase_overflow () =
  (* pairwise-coprime denominators near 2^31: the LCM overflows the
     magnitude cap, and [create] must return None rather than crash *)
  let big = [ 2147483647; 2147483629; 2147483587; 2147483579 ] in
  let times = List.map (fun d -> Rat.make 1 d) big in
  Alcotest.(check bool) "LCM overflow yields None" true
    (Timebase.create times = None);
  (* a representable grid whose horizon does not fit must also decline *)
  match Timebase.create [ Rat.one ] with
  | None -> Alcotest.fail "unit grid must build"
  | Some _ ->
    Alcotest.(check bool)
      "oversized horizon yields None" true
      (Timebase.create ~horizon:(Rat.of_int max_int) [ Rat.one ] = None)

let prop_timebase_roundtrip =
  qprop "of_ticks inverts ticks exactly" ~count:300
    QCheck2.Gen.(
      let* num = int_range (-100000) 100000 in
      let* den = int_range 1 1000 in
      let+ extra = int_range 1 1000 in
      (num, den, extra))
    (fun (num, den, extra) ->
      let r = Rat.make num den in
      match Timebase.create [ r; Rat.make 1 extra ] with
      | None -> true
      | Some tb -> Timebase.of_ticks tb (Timebase.ticks tb r) = r)

let () =
  Alcotest.run "tick_engine"
    [
      ( "differential",
        [ prop_differential; Alcotest.test_case "profile fallback" `Quick test_profile_fallback ] );
      ( "timebase",
        [
          Alcotest.test_case "basic" `Quick test_timebase_basic;
          Alcotest.test_case "overflow" `Quick test_timebase_overflow;
          prop_timebase_roundtrip;
        ] );
    ]
