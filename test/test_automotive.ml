(* Tests for the automotive engine-management application (the paper's
   industry motivation, ref. [3]), the classical response-time analysis,
   and the stepping interpreter. *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Network = Fppn.Network
module Process = Fppn.Process
module Semantics = Fppn.Semantics
module Stepper = Fppn.Stepper
module Derive = Taskgraph.Derive
module Graph = Taskgraph.Graph
module Analysis = Taskgraph.Analysis
module List_scheduler = Sched.List_scheduler
module Rta = Sched.Rta
module Engine = Runtime.Engine
module Exec_trace = Runtime.Exec_trace
module Uniproc_fp = Runtime.Uniproc_fp

let ms = Rat.of_int

let eq_sig a b =
  List.equal
    (fun (n1, h1) (n2, h2) -> String.equal n1 n2 && List.equal V.equal h1 h2)
    a b

(* --- automotive network ----------------------------------------------------- *)

let test_structure () =
  let net = Fppn_apps.Automotive.network () in
  Alcotest.(check int) "8 processes" 8 (Network.n_processes net);
  Alcotest.(check bool) "hyperperiod 200 over periodic+sporadic periods" true
    (Rat.equal (Network.hyperperiod net) (ms 200));
  (match Network.user_map net with
  | Error _ -> Alcotest.fail "engine app in the scheduling subclass"
  | Ok users ->
    let user_of name =
      match users.(Network.find net name) with
      | Some u -> Process.name (Network.process net u)
      | None -> "-"
    in
    Alcotest.(check string) "KnockSensor -> IgnitionCtrl" "IgnitionCtrl"
      (user_of "KnockSensor");
    Alcotest.(check string) "DriverRequest -> InjectionCtrl" "InjectionCtrl"
      (user_of "DriverRequest"));
  let d = Derive.derive_exn ~wcet:Fppn_apps.Automotive.wcet net in
  (* 20+20+20+10+2+1 periodic + 30 knock server + 20 driver server *)
  Alcotest.(check int) "123 jobs over the 200 ms hyperperiod" 123
    (Graph.n_jobs d.Derive.graph);
  let load = (Analysis.load d.Derive.graph).Analysis.value in
  Alcotest.(check bool) "load in a schedulable band" true
    (Rat.to_float load > 0.3 && Rat.to_float load < 1.0)

let test_engine_behavior_end_to_end () =
  let net = Fppn_apps.Automotive.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Automotive.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "engine app should fit on two cores"
  in
  let horizon = d.Derive.hyperperiod in
  let sporadic =
    (* exclude horizon-edge events whose server window closes in the
       unsimulated next frame *)
    let raw = Fppn_apps.Automotive.knock_burst ~horizon in
    let _, unhandled = Engine.sporadic_assignment net d ~frames:1 raw in
    List.map
      (fun (n, stamps) ->
        (n, List.filter (fun s -> not (List.mem (n, s) unhandled)) stamps))
      raw
  in
  let config =
    { (Engine.default_config ~frames:1 ~n_procs:2 ()) with
      Engine.sporadic;
      inputs = Fppn_apps.Automotive.input_feed;
      exec = Runtime.Exec_time.uniform ~seed:2 ~min_fraction:0.5 }
  in
  let rt = Engine.run net d sched config in
  Alcotest.(check int) "no deadline misses" 0 rt.Engine.stats.Exec_trace.misses;
  Alcotest.(check (list string)) "trace complies with the semantics" []
    (List.map
       (Format.asprintf "%a" Exec_trace.pp_violation)
       (Exec_trace.check d.Derive.graph (Engine.trace rt)));
  (* 20 injector pulses per frame, knock retard visible in the ignition *)
  let injector = List.assoc "injector" (Engine.output_history rt) in
  Alcotest.(check int) "20 injector pulses" 20 (List.length injector);
  let ignition = List.assoc "ignition" (Engine.output_history rt) in
  Alcotest.(check int) "10 ignition updates" 10 (List.length ignition);
  (* before any knock event the retard is 0; after the 55 ms burst the
     spark output drops *)
  let nth l i = List.nth l i in
  let early = V.to_float (nth ignition 0) and late = V.to_float (nth ignition 4) in
  Alcotest.(check bool) "knock retards the spark" true (late < early);
  (* determinism against the zero-delay reference *)
  let zd =
    Semantics.run ~inputs:Fppn_apps.Automotive.input_feed net
      (Semantics.invocations ~sporadic ~horizon net)
  in
  Alcotest.(check bool) "deterministic" true
    (eq_sig (Semantics.signature zd) (Engine.signature rt))

let test_knock_trace_valid () =
  let net = Fppn_apps.Automotive.network () in
  let horizon = ms 400 in
  List.iter
    (fun (name, stamps) ->
      let ev = Process.event (Network.process net (Network.find net name)) in
      Alcotest.(check bool) (name ^ " trace valid") true
        (Fppn.Event.is_valid_sporadic_trace ev stamps))
    (Fppn_apps.Automotive.knock_burst ~horizon)

(* --- response-time analysis --------------------------------------------------- *)

let test_rta_simple_pair () =
  (* classic pair: C1=20 T1=50 (high), C2=30 T2=100 (low):
     R1 = 20; R2 fixpoint: 30 + ceil(50/50)*20 = 50 *)
  let b = Network.Builder.create "rta" in
  let add name period =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:
           (Fppn.Event.periodic ~period:(ms period) ~deadline:(ms period) ())
         (Process.Native (fun _ -> ())))
  in
  add "Hi" 50;
  add "Lo" 100;
  let net = Network.Builder.finish_exn b in
  let wcet = Derive.wcet_of_list (ms 0) [ ("Hi", ms 20); ("Lo", ms 30) ] in
  let entries = Rta.analyse ~wcet net in
  Alcotest.(check bool) "schedulable" true (Rta.schedulable entries);
  let find n = List.find (fun e -> e.Rta.process = n) entries in
  Alcotest.(check (option (testable Rat.pp Rat.equal))) "R_Hi = 20" (Some (ms 20))
    (find "Hi").Rta.response;
  Alcotest.(check (option (testable Rat.pp Rat.equal))) "R_Lo = 50" (Some (ms 50))
    (find "Lo").Rta.response

let test_rta_unschedulable () =
  let b = Network.Builder.create "rta2" in
  let add name period =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:
           (Fppn.Event.periodic ~period:(ms period) ~deadline:(ms period) ())
         (Process.Native (fun _ -> ())))
  in
  add "Hi" 50;
  add "Lo" 100;
  let net = Network.Builder.finish_exn b in
  (* utilization 40/50 + 40/100 = 1.2 *)
  let wcet = Derive.wcet_of_list (ms 0) [ ("Hi", ms 40); ("Lo", ms 40) ] in
  let entries = Rta.analyse ~wcet net in
  Alcotest.(check bool) "not schedulable" false (Rta.schedulable entries);
  let lo = List.find (fun e -> e.Rta.process = "Lo") entries in
  Alcotest.(check bool) "Lo is the victim" true (lo.Rta.response = None)

let test_rta_bounds_simulation () =
  (* the analytic bound dominates the simulated maxima (FMS workload) *)
  let net = Fppn_apps.Fms.reduced () in
  let entries = Rta.analyse ~wcet:Fppn_apps.Fms.wcet net in
  Alcotest.(check bool) "FMS schedulable under RM" true (Rta.schedulable entries);
  let horizon = ms 10_000 in
  let up =
    Uniproc_fp.run net
      (Uniproc_fp.default_config ~wcet:Fppn_apps.Fms.wcet ~horizon)
  in
  (* per process: observed response <= analytic bound *)
  let observed = Hashtbl.create 16 in
  List.iter
    (fun (r : Uniproc_fp.record) ->
      let resp = Rat.sub r.Uniproc_fp.finished r.Uniproc_fp.released in
      let prev =
        try Hashtbl.find observed r.Uniproc_fp.process with Not_found -> Rat.zero
      in
      Hashtbl.replace observed r.Uniproc_fp.process (Rat.max prev resp))
    up.Uniproc_fp.records;
  List.iter
    (fun e ->
      match (e.Rta.response, Hashtbl.find_opt observed e.Rta.process) with
      | Some bound, Some seen ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: observed %s <= bound %s" e.Rta.process
             (Rat.to_string seen) (Rat.to_string bound))
          true
          Rat.(seen <= bound)
      | _ -> ())
    entries

let test_rta_sporadic_interference () =
  (* a bursty sporadic above a periodic victim adds m*C per window *)
  let b = Network.Builder.create "rta3" in
  Network.Builder.add_process b
    (Process.make ~name:"Burst"
       ~event:(Fppn.Event.sporadic ~burst:2 ~min_period:(ms 100) ~deadline:(ms 200) ())
       (Process.Native (fun _ -> ())));
  Network.Builder.add_process b
    (Process.make ~name:"Victim"
       ~event:(Fppn.Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun _ -> ())));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Burst"
    ~reader:"Victim" "c";
  Network.Builder.add_priority b "Burst" "Victim";
  let net = Network.Builder.finish_exn b in
  let wcet = Derive.wcet_of_list (ms 0) [ ("Burst", ms 10); ("Victim", ms 30) ] in
  let entries =
    Rta.analyse ~priorities:[ ("Burst", 0); ("Victim", 1) ] ~wcet net
  in
  let victim = List.find (fun e -> e.Rta.process = "Victim") entries in
  (* R = 30 + 2*10 = 50 *)
  Alcotest.(check (option (testable Rat.pp Rat.equal))) "burst interference counted"
    (Some (ms 50)) victim.Rta.response

(* --- stepping interpreter ------------------------------------------------------ *)

let test_stepper_matches_run () =
  let net = Fppn_apps.Fig1.network () in
  let sporadic = [ ("CoefB", [ ms 50 ]) ] in
  let inputs = Fppn_apps.Fig1.input_feed ~samples:16 in
  let stepper = Stepper.create ~sporadic ~inputs ~horizon:(ms 400) net in
  Alcotest.(check (option (testable Rat.pp Rat.equal))) "first instant at 0"
    (Some (ms 0)) (Stepper.now stepper);
  (* instants: 0, 50, 100, 200, 300 *)
  Alcotest.(check int) "five instants pending" 5 (Stepper.remaining stepper);
  let first = Option.get (Stepper.step stepper) in
  Alcotest.(check bool) "InputA runs first at t=0" true
    (fst (List.hd first.Stepper.executed) = "InputA");
  (* channel state is inspectable mid-run *)
  let gain = Fppn.Channel.peek (Fppn.Netstate.channel_state (Stepper.state stepper) "gain") in
  Alcotest.(check bool) "gain blackboard written at t=0" true (not (V.is_absent gain));
  let rest = Stepper.run_to_end stepper in
  Alcotest.(check int) "remaining instants executed" 4 (List.length rest);
  Alcotest.(check int) "exhausted" 0 (Stepper.remaining stepper);
  Alcotest.(check bool) "no more steps" true (Stepper.step stepper = None);
  (* final histories coincide with the one-shot run *)
  let reference =
    Semantics.run ~inputs net (Semantics.invocations ~sporadic ~horizon:(ms 400) net)
  in
  Alcotest.(check bool) "histories equal the one-shot interpreter" true
    (eq_sig
       (Semantics.signature reference)
       (List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Fppn.Netstate.channel_history (Stepper.state stepper)
          @ Fppn.Netstate.output_history (Stepper.state stepper))))

let test_stepper_execution_order_within_instant () =
  let net = Fppn_apps.Fig1.network () in
  let stepper = Stepper.create ~horizon:(ms 200) net in
  let s = Option.get (Stepper.step stepper) in
  let order = List.map fst s.Stepper.executed in
  let pos n =
    let rec find i = function
      | [] -> Alcotest.failf "%s did not run" n
      | x :: _ when x = n -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 order
  in
  Alcotest.(check bool) "InputA before FilterA" true (pos "InputA" < pos "FilterA");
  Alcotest.(check bool) "FilterA before NormA" true (pos "FilterA" < pos "NormA");
  Alcotest.(check bool) "FilterB before OutputB" true (pos "FilterB" < pos "OutputB")

let () =
  Alcotest.run "automotive-rta-stepper"
    [
      ( "automotive",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "end-to-end behavior" `Quick test_engine_behavior_end_to_end;
          Alcotest.test_case "knock traces valid" `Quick test_knock_trace_valid;
        ] );
      ( "rta",
        [
          Alcotest.test_case "textbook pair" `Quick test_rta_simple_pair;
          Alcotest.test_case "unschedulable" `Quick test_rta_unschedulable;
          Alcotest.test_case "bounds the simulation" `Quick test_rta_bounds_simulation;
          Alcotest.test_case "sporadic interference" `Quick test_rta_sporadic_interference;
        ] );
      ( "stepper",
        [
          Alcotest.test_case "matches run" `Quick test_stepper_matches_run;
          Alcotest.test_case "order within an instant" `Quick
            test_stepper_execution_order_within_instant;
        ] );
    ]
