module Rat = Rt_util.Rat

let rat = Alcotest.testable Rat.pp Rat.equal

let check_rat = Alcotest.check rat

let test_normalization () =
  check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check_rat "-6/4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check_rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.(check int) "num of 3/2" 3 (Rat.num (Rat.make 6 4));
  Alcotest.(check int) "den of 3/2" 2 (Rat.den (Rat.make 6 4));
  Alcotest.(check int) "den positive after sign flip" 4 (Rat.den (Rat.make (-3) (-4) |> Rat.neg |> Rat.neg))

let test_zero_denominator () =
  Alcotest.check_raises "make x 0" Rat.Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_arithmetic () =
  check_rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check_rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check_rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check_rat "(1/2) / (1/4)" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  Alcotest.check_raises "div by zero" Rat.Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Rat.(Rat.make 1 3 < Rat.make 1 2);
  Alcotest.(check bool) "2/4 = 1/2" true (Rat.equal (Rat.make 2 4) (Rat.make 1 2));
  Alcotest.(check int) "sign -5/3" (-1) (Rat.sign (Rat.make (-5) 3));
  Alcotest.(check int) "sign 0" 0 (Rat.sign Rat.zero)

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check int) "floor of integer" 5 (Rat.floor (Rat.of_int 5));
  Alcotest.(check int) "fdiv 700/200" 3 (Rat.fdiv (Rat.of_int 700) (Rat.of_int 200))

let test_lcm () =
  (* the FMS hyperperiods of Sec. V-B *)
  let l = Rat.lcm_list (List.map Rat.of_int [ 200; 5000; 1600; 1000 ]) in
  check_rat "original FMS hyperperiod" (Rat.of_int 40000) l;
  let l' = Rat.lcm_list (List.map Rat.of_int [ 200; 5000; 400; 1000 ]) in
  check_rat "reduced FMS hyperperiod" (Rat.of_int 10000) l';
  (* rational lcm, footnote 4 *)
  check_rat "lcm 1/2 1/3 = 1" Rat.one (Rat.lcm (Rat.make 1 2) (Rat.make 1 3));
  check_rat "lcm 3/2 1/2 = 3/2" (Rat.make 3 2) (Rat.lcm (Rat.make 3 2) (Rat.make 1 2));
  Alcotest.check_raises "lcm needs positive"
    (Invalid_argument "Rat.lcm: arguments must be positive") (fun () ->
      ignore (Rat.lcm Rat.zero Rat.one))

let test_to_int () =
  Alcotest.(check int) "to_int_exn 5" 5 (Rat.to_int_exn (Rat.of_int 5));
  Alcotest.(check bool) "is_integer 4/2" true (Rat.is_integer (Rat.make 4 2));
  Alcotest.(check bool) "not integer 1/2" false (Rat.is_integer (Rat.make 1 2))

let test_of_string () =
  check_rat "parse 42" (Rat.of_int 42) (Rat.of_string "42");
  check_rat "parse 3/4" (Rat.make 3 4) (Rat.of_string "3/4");
  check_rat "parse 2.5" (Rat.make 5 2) (Rat.of_string "2.5");
  check_rat "parse -1.25" (Rat.make (-5) 4) (Rat.of_string "-1.25");
  check_rat "parse .5" (Rat.make 1 2) (Rat.of_string "0.5");
  Alcotest.(check string) "print 3/4" "3/4" (Rat.to_string (Rat.make 3 4));
  Alcotest.(check string) "print integer" "7" (Rat.to_string (Rat.of_int 7));
  Alcotest.check_raises "garbage" (Invalid_argument "Rat.of_string: \"abc\"")
    (fun () -> ignore (Rat.of_string "abc"))

let test_overflow () =
  let big = Rat.of_int max_int in
  Alcotest.check_raises "mul overflow" Rat.Overflow (fun () ->
      ignore (Rat.mul big (Rat.of_int 2)));
  Alcotest.check_raises "add overflow" Rat.Overflow (fun () ->
      ignore (Rat.add big big))

let test_make_normalized () =
  check_rat "make_normalized 3 2" (Rat.make 3 2) (Rat.make_normalized 3 2);
  check_rat "make_normalized -7 1" (Rat.of_int (-7)) (Rat.make_normalized (-7) 1);
  Alcotest.check_raises "den must be positive"
    (Invalid_argument "Rat.make_normalized: denominator must be positive")
    (fun () -> ignore (Rat.make_normalized 1 0))

(* --- properties ----------------------------------------------------- *)

let small_rat_gen =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range (-1000) 1000)
      (int_range 1 1000))

let qprop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen f)

let prop_add_commutative =
  qprop "add commutative" (QCheck2.Gen.pair small_rat_gen small_rat_gen)
    (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a))

let prop_add_associative =
  qprop "add associative"
    (QCheck2.Gen.triple small_rat_gen small_rat_gen small_rat_gen)
    (fun (a, b, c) ->
      Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c))

let prop_mul_commutative =
  qprop "mul commutative" (QCheck2.Gen.pair small_rat_gen small_rat_gen)
    (fun (a, b) -> Rat.equal (Rat.mul a b) (Rat.mul b a))

let prop_mul_associative =
  qprop "mul associative"
    (QCheck2.Gen.triple small_rat_gen small_rat_gen small_rat_gen)
    (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.mul b c)) (Rat.mul (Rat.mul a b) c))

let prop_identities =
  qprop "additive and multiplicative identities" small_rat_gen (fun a ->
      Rat.equal a (Rat.add a Rat.zero)
      && Rat.equal a (Rat.mul a Rat.one))

let prop_additive_inverse =
  qprop "a + (-a) = 0" small_rat_gen (fun a ->
      Rat.equal Rat.zero (Rat.add a (Rat.neg a)))

let prop_multiplicative_inverse =
  qprop "a * (1/a) = 1 for nonzero a" small_rat_gen (fun a ->
      if Rat.sign a = 0 then true
      else Rat.equal Rat.one (Rat.mul a (Rat.div Rat.one a)))

let prop_mul_distributes =
  qprop "mul distributes over add"
    (QCheck2.Gen.triple small_rat_gen small_rat_gen small_rat_gen)
    (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_compare_antisym =
  qprop "compare antisymmetric" (QCheck2.Gen.pair small_rat_gen small_rat_gen)
    (fun (a, b) -> Rat.compare a b = -Rat.compare b a)

let prop_compare_total =
  (* trichotomy: exactly one of <, =, > holds, and = agrees with equal *)
  qprop "ordering total" (QCheck2.Gen.pair small_rat_gen small_rat_gen)
    (fun (a, b) ->
      let c = Rat.compare a b in
      (c < 0 || c = 0 || c > 0)
      && (c = 0) = Rat.equal a b
      && (c = 0) = (Rat.(a <= b) && Rat.(b <= a)))

let prop_compare_transitive =
  qprop "ordering transitive"
    (QCheck2.Gen.triple small_rat_gen small_rat_gen small_rat_gen)
    (fun (a, b, c) ->
      let sorted = List.sort Rat.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Rat.(x <= y) && Rat.(y <= z) && Rat.(x <= z)
      | _ -> false)

let prop_lcm_divides =
  let pos_gen =
    QCheck2.Gen.(
      map2 (fun n d -> Rat.make n d) (int_range 1 500) (int_range 1 500))
  in
  qprop "lcm is a common multiple" (QCheck2.Gen.pair pos_gen pos_gen)
    (fun (a, b) ->
      let l = Rat.lcm a b in
      Rat.is_integer (Rat.div l a) && Rat.is_integer (Rat.div l b))

let prop_floor_bound =
  qprop "floor bounds" small_rat_gen (fun a ->
      let f = Rat.floor a in
      let fl = Rat.of_int f in
      let fl1 = Rat.of_int (Stdlib.( + ) f 1) in
      Rat.(fl <= a) && Rat.(a < fl1))

let prop_string_roundtrip =
  qprop "to_string/of_string roundtrip" small_rat_gen (fun a ->
      Rat.equal a (Rat.of_string (Rat.to_string a)))

(* --- fast-path equivalence ------------------------------------------ *)

(* add/sub/mul/compare special-case integers, equal denominators and
   coprime denominators; each must agree with the textbook
   cross-multiplication formulas (safe here: operands stay small) *)

let ref_add a b =
  Rat.make
    ((Rat.num a * Rat.den b) + (Rat.num b * Rat.den a))
    (Rat.den a * Rat.den b)

let ref_mul a b = Rat.make (Rat.num a * Rat.num b) (Rat.den a * Rat.den b)

let ref_compare a b =
  Stdlib.compare (Rat.num a * Rat.den b) (Rat.num b * Rat.den a)

let is_normalized r =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  Rat.den r > 0
  && (Rat.num r <> 0 || Rat.den r = 1)
  && gcd (abs (Rat.num r)) (Rat.den r) = 1

let int_rat_gen = QCheck2.Gen.(map Rat.of_int (int_range (-1000) 1000))

let mixed_pair_gen =
  (* biased towards the fast paths: integers and equal denominators *)
  QCheck2.Gen.(
    oneof
      [
        pair small_rat_gen small_rat_gen;
        pair int_rat_gen int_rat_gen;
        pair int_rat_gen small_rat_gen;
        map3
          (fun n1 n2 d -> (Rat.make n1 d, Rat.make n2 d))
          (int_range (-1000) 1000) (int_range (-1000) 1000) (int_range 1 1000);
      ])

let prop_add_matches_reference =
  qprop "add fast paths match reference" mixed_pair_gen (fun (a, b) ->
      let s = Rat.add a b in
      Rat.equal s (ref_add a b) && is_normalized s)

let prop_sub_matches_reference =
  qprop "sub fast paths match reference" mixed_pair_gen (fun (a, b) ->
      let d = Rat.sub a b in
      Rat.equal d (ref_add a (Rat.neg b)) && is_normalized d)

let prop_mul_matches_reference =
  qprop "mul fast paths match reference" mixed_pair_gen (fun (a, b) ->
      let p = Rat.mul a b in
      Rat.equal p (ref_mul a b) && is_normalized p)

let prop_compare_matches_reference =
  qprop "compare fast paths match reference" mixed_pair_gen (fun (a, b) ->
      Stdlib.compare (Rat.compare a b) 0 = Stdlib.compare (ref_compare a b) 0)

let prop_make_normalized_roundtrip =
  qprop "make_normalized roundtrips normalized parts" small_rat_gen (fun a ->
      Rat.equal a (Rat.make_normalized (Rat.num a) (Rat.den a)))

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "to_int" `Quick test_to_int;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "overflow" `Quick test_overflow;
          Alcotest.test_case "make_normalized" `Quick test_make_normalized;
        ] );
      ( "properties",
        [
          prop_add_commutative;
          prop_add_associative;
          prop_mul_commutative;
          prop_mul_associative;
          prop_identities;
          prop_additive_inverse;
          prop_multiplicative_inverse;
          prop_mul_distributes;
          prop_compare_antisym;
          prop_compare_total;
          prop_compare_transitive;
          prop_lcm_divides;
          prop_floor_bound;
          prop_string_roundtrip;
          prop_add_matches_reference;
          prop_sub_matches_reference;
          prop_mul_matches_reference;
          prop_compare_matches_reference;
          prop_make_normalized_roundtrip;
        ] );
    ]
