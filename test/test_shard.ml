(* Differential tests for the sharded engine core.

   [Engine.run_sharded] cuts the scheduled processors into K shards and
   runs the two-phase (timing, then bodies) protocol over per-edge
   mailboxes and frame barriers; whenever its preconditions fail it
   falls back to [Engine.run].  Either way the observable result must
   be bit-identical to the sequential engine — same trace records, same
   channel/output histories, same stats — over random workloads
   covering sporadic stamps, multi-processor schedules and >64-process
   networks.

   The pool's order-preserving work-stealing combinators and the
   partitioner's invariants are property-tested here too: both sit
   under the sharded engine and their determinism is what makes the
   differential meaningful. *)

module Rat = Rt_util.Rat
module Pool = Rt_util.Pool
module Engine = Runtime.Engine
module Partition = Runtime.Partition
module Exec_time = Runtime.Exec_time
module Derive = Taskgraph.Derive
module List_scheduler = Sched.List_scheduler
module Randgen = Fppn_apps.Randgen
module Metrics = Fppn_obs.Metrics

let qprop name ?(count = 100) ?print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen f)

let ms n = Rat.of_int n

(* --- differential: sharded engine == sequential engine --------------- *)

type case = {
  seed : int;
  n_periodic : int;
  n_sporadic : int;
  n_procs : int;
  frames : int;
  shards : int;
  exec_kind : int;  (* 0 constant, 1 scaled, 2 uniform (forces fallback) *)
}

let case_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 99999 in
    let* n_periodic = int_range 1 6 in
    let* n_sporadic = int_range 0 2 in
    let* n_procs = int_range 1 4 in
    let* frames = int_range 1 6 in
    let* shards = int_range 1 4 in
    let+ exec_kind = int_range 0 2 in
    { seed; n_periodic; n_sporadic; n_procs; frames; shards; exec_kind })

let case_print c =
  Printf.sprintf
    "{seed=%d; periodic=%d; sporadic=%d; procs=%d; frames=%d; shards=%d; \
     exec=%d}"
    c.seed c.n_periodic c.n_sporadic c.n_procs c.frames c.shards c.exec_kind

let wcet_scale = Rat.make 1 25

(* fresh per run: [Exec_time.uniform] carries PRNG state *)
let exec_of c =
  match c.exec_kind with
  | 0 -> Exec_time.constant
  | 1 -> Exec_time.scaled 0.5
  | _ -> Exec_time.uniform ~seed:(c.seed + 1) ~min_fraction:0.25

let setup_of c =
  let net =
    Randgen.network
      {
        Randgen.default_params with
        seed = c.seed;
        n_periodic = c.n_periodic;
        n_sporadic = c.n_sporadic;
      }
  in
  let wcet = Randgen.wcet ~scale:wcet_scale (Derive.const_wcet Rat.one) net in
  match Derive.derive ~wcet net with
  | Error _ -> None
  | Ok d -> (
    match snd (List_scheduler.auto ~n_procs:c.n_procs d.Derive.graph) with
    | None -> None
    | Some a ->
      let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int c.frames) in
      let sporadic =
        Randgen.random_traces ~seed:(c.seed + 7) ~horizon ~density:0.5 net
      in
      let config () =
        {
          (Engine.default_config ~frames:c.frames ~n_procs:c.n_procs ()) with
          Engine.exec = exec_of c;
          sporadic;
        }
      in
      Some (net, d, a.List_scheduler.schedule, config))

let run_both c =
  match setup_of c with
  | None -> None
  | Some (net, d, sched, config) ->
    let sharded = Engine.run_sharded ~shards:c.shards net d sched (config ()) in
    let sequential = Engine.run net d sched (config ()) in
    Some (sharded, sequential)

let identical a b =
  List.equal
    (fun (x : Runtime.Exec_trace.record) y -> x = y)
    (Engine.trace a) (Engine.trace b)
  && Engine.signature a = Engine.signature b
  && a.Engine.stats = b.Engine.stats
  && a.Engine.unhandled_events = b.Engine.unhandled_events

let prop_differential =
  qprop "sharded bit-identical to sequential engine" ~count:120
    ~print:case_print case_gen
    (fun c ->
      match run_both c with
      | None -> true (* infeasible draw: nothing to compare *)
      | Some (sharded, sequential) -> identical sharded sequential)

(* The ISSUE-level acceptance bar, stated on its own: signatures agree
   on 200 random instances, sporadic stamps included. *)
let prop_signature =
  qprop "signature equality on 200 random instances" ~count:200
    ~print:case_print case_gen
    (fun c ->
      match run_both c with
      | None -> true
      | Some (sharded, sequential) ->
        Engine.signature sharded = Engine.signature sequential)

(* Sharded against the exact rational reference: composes the tick
   differential (test_tick) with the sharding one, so a bug cancelling
   out between the two compiled cores would still be caught. *)
let prop_vs_reference =
  qprop "sharded signature equals rational reference" ~count:60
    ~print:case_print case_gen
    (fun c ->
      match setup_of c with
      | None -> true
      | Some (net, d, sched, config) ->
        let sharded =
          Engine.run_sharded ~shards:c.shards net d sched (config ())
        in
        let reference = Engine.run_reference net d sched (config ()) in
        Engine.signature sharded = Engine.signature reference)

(* --- targeted sharding edges ----------------------------------------- *)

let with_counter name f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Metrics.reset ();
  let r = f () in
  let n = Metrics.counter_value (Metrics.counter name) in
  Metrics.set_enabled was;
  (r, n)

let fig1_setup ~n_procs =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  match snd (List_scheduler.auto ~n_procs d.Derive.graph) with
  | Some a -> (net, d, a.List_scheduler.schedule)
  | None -> Alcotest.fail "fig1 unschedulable"

(* shards=1 must delegate to [Engine.run] outright — bit-identity is by
   construction, and no sharded run may be counted *)
let test_one_shard_delegates () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config = Engine.default_config ~frames:6 ~n_procs:2 () in
  let r1, sharded_runs =
    with_counter "engine.sharded_runs" (fun () ->
        Engine.run_sharded ~shards:1 net d sched config)
  in
  Alcotest.(check int) "no sharded run counted" 0 sharded_runs;
  let r2 = Engine.run net d sched config in
  Alcotest.(check bool) "shards=1 identical to run" true (identical r1 r2)

(* fig1 on two processors with constant durations satisfies every
   precondition: the sharded path itself (not the fallback) must run
   and agree with the sequential engine, sporadic stamps included *)
let test_sharded_path_engages () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config =
    {
      (Engine.default_config ~frames:6 ~n_procs:2 ()) with
      Engine.sporadic = [ ("CoefB", [ ms 650 ]) ];
    }
  in
  let r1, sharded_runs =
    with_counter "engine.sharded_runs" (fun () ->
        Engine.run_sharded ~shards:2 net d sched config)
  in
  Alcotest.(check int) "sharded path ran" 1 sharded_runs;
  let r2 = Engine.run net d sched config in
  Alcotest.(check bool) "sharded run identical" true (identical r1 r2)

(* sampled durations break the body-independent timing recurrence, so
   the run must fall back — and still match, draw for draw *)
let test_sampled_durations_fall_back () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config exec =
    { (Engine.default_config ~frames:4 ~n_procs:2 ()) with Engine.exec = exec }
  in
  let variable () = Exec_time.uniform ~seed:11 ~min_fraction:0.25 in
  let r1, fallbacks =
    with_counter "engine.shard_fallbacks" (fun () ->
        Engine.run_sharded ~shards:2 net d sched (config (variable ())))
  in
  Alcotest.(check int) "fallback counted" 1 fallbacks;
  let r2 = Engine.run net d sched (config (variable ())) in
  Alcotest.(check bool) "fallback run identical" true (identical r1 r2)

(* >64 processes: multi-word hot sets in the sequential engine, many
   processors per shard here; 3 shards stay bit-identical *)
let test_many_procs () =
  let params =
    {
      Randgen.default_params with
      seed = 4242;
      n_periodic = 70;
      n_sporadic = 0;
      channel_density = 0.03;
    }
  in
  let net = Randgen.network params in
  let wcet = Randgen.wcet ~scale:wcet_scale (Derive.const_wcet Rat.one) net in
  let d = Derive.derive_exn ~wcet net in
  match snd (List_scheduler.auto ~n_procs:70 d.Derive.graph) with
  | None -> Alcotest.fail "70-process draw unschedulable"
  | Some a ->
    let sched = a.List_scheduler.schedule in
    let config = Engine.default_config ~frames:3 ~n_procs:70 () in
    let sharded = Engine.run_sharded ~shards:3 net d sched config in
    let sequential = Engine.run net d sched config in
    Alcotest.(check bool)
      ">64-process sharded run identical" true (identical sharded sequential)

(* --- partitioner invariants ------------------------------------------ *)

let partition_case_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 99999 in
    let* n_periodic = int_range 1 8 in
    let* n_procs = int_range 1 5 in
    let+ shards = int_range 1 8 in
    (seed, n_periodic, n_procs, shards))

let prop_partition =
  qprop "partition covers processors, bounds cut, deterministic"
    ~count:150
    ~print:(fun (s, np, pr, k) ->
      Printf.sprintf "{seed=%d; periodic=%d; procs=%d; shards=%d}" s np pr k)
    partition_case_gen
    (fun (seed, n_periodic, n_procs, shards) ->
      let net =
        Randgen.network
          { Randgen.default_params with seed; n_periodic; n_sporadic = 0 }
      in
      let wcet =
        Randgen.wcet ~scale:wcet_scale (Derive.const_wcet Rat.one) net
      in
      match Derive.derive ~wcet net with
      | Error _ -> true
      | Ok d -> (
        match snd (List_scheduler.auto ~n_procs d.Derive.graph) with
        | None -> true
        | Some a ->
          let sched = a.List_scheduler.schedule in
          let p = Partition.make ~shards d sched in
          let k = Partition.shards p in
          k >= 1
          && k <= max 1 n_procs
          && k <= max 1 shards
          (* every processor in exactly one shard, consistently *)
          && Array.length p.Partition.shard_of_proc = n_procs
          && Array.for_all
               (fun s -> s >= 0 && s < k)
               p.Partition.shard_of_proc
          && Array.to_list p.Partition.procs_of_shard
             |> List.concat_map Array.to_list
             |> List.sort Int.compare
             = List.init n_procs Fun.id
          && Array.for_all
               (fun pr ->
                 Array.for_all
                   (fun q -> p.Partition.shard_of_proc.(q) >= 0)
                   pr)
               p.Partition.procs_of_shard
          && Partition.cut_edges p <= Partition.total_edges p
          && (k > 1 || Partition.cut_edges p = 0)
          (* pure function of its inputs *)
          && Partition.make ~shards d sched = p))

(* --- pool order preservation ----------------------------------------- *)

let pool_case_gen =
  QCheck2.Gen.(
    let* n = int_range 0 500 in
    let* jobs = int_range 1 8 in
    let+ chunk = int_range 1 7 in
    (n, jobs, chunk))

let pool_case_print (n, jobs, chunk) =
  Printf.sprintf "{n=%d; jobs=%d; chunk=%d}" n jobs chunk

(* work-stealing may run blocks on any worker in any order; results
   must still land at their input index, for any grain *)
let prop_pool_order =
  qprop "parallel_map preserves input order under stealing" ~count:60
    ~print:pool_case_print pool_case_gen
    (fun (n, jobs, chunk) ->
      let input = Array.init n (fun i -> (i * 7919) lxor 0x2a) in
      let f x = (x * x) + (x lsr 3) in
      let expected = Array.map f input in
      Pool.with_pool ~jobs (fun pool ->
          Pool.parallel_map ~chunk pool f input = expected
          && Pool.map_list ~chunk pool f (Array.to_list input)
             = Array.to_list expected))

let prop_pool_for =
  qprop "parallel_for writes every index exactly once" ~count:40
    ~print:pool_case_print pool_case_gen
    (fun (n, jobs, chunk) ->
      let hits = Array.make (max 1 n) 0 in
      Pool.with_pool ~jobs (fun pool ->
          Pool.parallel_for ~chunk pool n (fun i ->
              hits.(i) <- hits.(i) + 1));
      Array.for_all (fun h -> h = 1) (Array.sub hits 0 n) || n = 0)

let test_steal_counter_monotone () =
  let s0 = Pool.steals () in
  Pool.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 5 do
        ignore
          (Pool.parallel_map ~chunk:1 pool
             (fun x ->
               (* uneven work invites steals; the counter must only grow *)
               let acc = ref x in
               for _ = 1 to (x mod 7) * 400 do
                 acc := (!acc * 31) land 0xffffff
               done;
               !acc)
             (Array.init 200 Fun.id))
      done);
  Alcotest.(check bool) "steal counter monotone" true (Pool.steals () >= s0)

let () =
  Alcotest.run "shard_engine"
    [
      ( "differential",
        [
          prop_differential;
          prop_signature;
          prop_vs_reference;
          Alcotest.test_case "shards=1 delegates" `Quick
            test_one_shard_delegates;
          Alcotest.test_case "sharded path engages" `Quick
            test_sharded_path_engages;
          Alcotest.test_case "sampled durations fall back" `Quick
            test_sampled_durations_fall_back;
          Alcotest.test_case ">64 processes" `Quick test_many_procs;
        ] );
      ("partition", [ prop_partition ]);
      ( "pool",
        [
          prop_pool_order;
          prop_pool_for;
          Alcotest.test_case "steal counter monotone" `Quick
            test_steal_counter_monotone;
        ] );
    ]
