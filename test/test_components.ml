(* Component-level tests that close gaps left by the suite-per-module
   files: netstate routing, instances, execution-time models, platform
   validation, engine error paths — plus the paper's Sec. II semantic
   foundation as a property: functional priorities are equivalent to
   uniprocessor fixed priorities under zero execution times. *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Netstate = Fppn.Netstate
module Instance = Fppn.Instance
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module Job = Taskgraph.Job
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Platform = Runtime.Platform
module Uniproc_fp = Runtime.Uniproc_fp

let ms = Rat.of_int
let value = Alcotest.testable V.pp V.equal

let qprop name ?(count = 50) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- netstate -------------------------------------------------------------- *)

let wr_net () =
  let b = Network.Builder.create "wr" in
  Network.Builder.add_process b
    (Process.make ~name:"W"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun ctx -> ctx.Process.write "c" (V.Int ctx.Process.job_index))));
  Network.Builder.add_process b
    (Process.make ~name:"R"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun ctx -> ctx.Process.write "o" (ctx.Process.read "c"))));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"W" ~reader:"R" "c";
  Network.Builder.add_priority b "W" "R";
  Network.Builder.add_output b ~owner:"R" "o";
  Network.Builder.finish_exn b

let test_netstate_routing_errors () =
  let b = Network.Builder.create "bad" in
  Network.Builder.add_process b
    (Process.make ~name:"P"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun ctx -> ignore (ctx.Process.read "nonexistent"))));
  let net = Network.Builder.finish_exn b in
  let st = Netstate.create net in
  Alcotest.(check bool) "read of unattached channel rejected" true
    (try
       Netstate.run_job st ~proc:0 ~now:Rat.zero;
       false
     with Invalid_argument _ -> true);
  (* a reader may not write its input channel *)
  let b2 = Network.Builder.create "bad2" in
  Network.Builder.add_process b2
    (Process.make ~name:"W"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun _ -> ())));
  Network.Builder.add_process b2
    (Process.make ~name:"R"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun ctx -> ctx.Process.write "c" (V.Int 1))));
  Network.Builder.add_channel b2 ~kind:Fppn.Channel.Fifo ~writer:"W" ~reader:"R" "c";
  Network.Builder.add_priority b2 "W" "R";
  let net2 = Network.Builder.finish_exn b2 in
  let st2 = Netstate.create net2 in
  Alcotest.(check bool) "reader writing its input rejected" true
    (try
       Netstate.run_job st2 ~proc:(Network.find net2 "R") ~now:Rat.zero;
       false
     with Invalid_argument _ -> true)

let test_netstate_deferred_writes () =
  let net = wr_net () in
  let st = Netstate.create net in
  let w = Network.find net "W" in
  let flush = Netstate.run_job_deferred st ~proc:w ~now:Rat.zero in
  (* before the flush the channel is still empty *)
  Alcotest.check value "not yet published" V.Absent
    (Fppn.Channel.peek (Netstate.channel_state st "c"));
  flush ();
  Alcotest.check value "published after flush" (V.Int 1)
    (Fppn.Channel.peek (Netstate.channel_state st "c"));
  Alcotest.(check (list value)) "history updated" [ V.Int 1 ]
    (List.assoc "c" (Netstate.channel_history st))

let test_netstate_reset () =
  let net = wr_net () in
  let st = Netstate.create net in
  Netstate.run_job st ~proc:(Network.find net "W") ~now:Rat.zero;
  Netstate.run_job st ~proc:(Network.find net "R") ~now:Rat.zero;
  Alcotest.(check int) "W ran once" 1
    (Instance.job_count (Netstate.instance st (Network.find net "W")));
  Netstate.reset st;
  Alcotest.(check int) "counters reset" 0
    (Instance.job_count (Netstate.instance st (Network.find net "W")));
  Alcotest.(check (list value)) "histories cleared" []
    (List.assoc "c" (Netstate.channel_history st))

let test_instance_skip_and_locals () =
  let proc =
    Process.make
      ~locals:[ ("acc", V.Int 0) ]
      ~name:"Acc"
      ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
      (Process.Native
         (fun ctx ->
           ctx.Process.set "acc"
             (V.Int (V.to_int (ctx.Process.get "acc") + ctx.Process.job_index))))
  in
  let inst = Instance.create proc in
  let nop_read _ = V.Absent and nop_write _ _ = () in
  Instance.run_job inst ~now:Rat.zero ~read:nop_read ~write:nop_write;
  Instance.skip_job inst;
  Instance.run_job inst ~now:Rat.zero ~read:nop_read ~write:nop_write;
  Alcotest.(check int) "counter includes the skip" 3 (Instance.job_count inst);
  (* acc = 1 (k=1) + 3 (k=3): the skipped k=2 never executed *)
  Alcotest.check value "locals persist across jobs" (V.Int 4) (Instance.get inst "acc");
  Instance.reset inst;
  Alcotest.check value "reset restores initial locals" (V.Int 0)
    (Instance.get inst "acc");
  Alcotest.(check bool) "unknown local" true
    (try
       ignore (Instance.get inst "ghost");
       false
     with Not_found -> true)

(* --- execution-time models -------------------------------------------------- *)

let job_with_wcet c =
  {
    Job.id = 0;
    proc = 0;
    proc_name = "P";
    k = 1;
    arrival = Rat.zero;
    deadline = ms 100;
    wcet = c;
    is_server = false;
  }

let test_exec_time_models () =
  let j = job_with_wcet (ms 40) in
  Alcotest.(check bool) "constant = wcet" true
    (Rat.equal (Exec_time.sample Exec_time.constant j) (ms 40));
  Alcotest.(check bool) "scaled 0.5" true
    (Rat.equal (Exec_time.sample (Exec_time.scaled 0.5) j) (ms 20));
  Alcotest.(check bool) "scaled beyond 1 models underestimation" true
    Rat.(Exec_time.sample (Exec_time.scaled 1.5) j > ms 40);
  let p = Exec_time.profile (fun name -> if name = "P" then ms 7 else ms 1) in
  Alcotest.(check bool) "profile by name" true (Rat.equal (Exec_time.sample p j) (ms 7));
  let u = Exec_time.uniform ~seed:5 ~min_fraction:0.25 in
  for _ = 1 to 200 do
    let d = Exec_time.sample u j in
    Alcotest.(check bool) "uniform within [0.25C, C]" true
      Rat.(d >= ms 10) ;
    Alcotest.(check bool) "uniform <= C" true Rat.(d <= ms 40)
  done;
  Alcotest.(check bool) "bad fraction rejected" true
    (try
       ignore (Exec_time.uniform ~seed:1 ~min_fraction:1.5);
       false
     with Invalid_argument _ -> true)

let test_exec_time_uniform_deterministic () =
  let j = job_with_wcet (ms 40) in
  let sample_seq seed =
    let u = Exec_time.uniform ~seed ~min_fraction:0.2 in
    List.init 20 (fun _ -> Exec_time.sample u j)
  in
  Alcotest.(check bool) "same seed, same durations" true
    (List.equal Rat.equal (sample_seq 7) (sample_seq 7));
  Alcotest.(check bool) "different seeds differ" true
    (not (List.equal Rat.equal (sample_seq 7) (sample_seq 8)))

let test_platform_validation () =
  Alcotest.(check bool) "zero processors rejected" true
    (try
       ignore (Platform.create ~n_procs:0 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative overhead rejected" true
    (try
       ignore
         (Platform.create
            ~overhead:
              { Platform.first_frame = Rat.neg Rat.one;
                steady_frame = Rat.zero;
                per_access = Rat.zero }
            ~n_procs:1 ());
       false
     with Invalid_argument _ -> true);
  let p = Platform.create ~overhead:Platform.mppa_like ~n_procs:2 () in
  Alcotest.(check bool) "first frame 41" true
    (Rat.equal (Platform.frame_overhead p ~frame:0) (ms 41));
  Alcotest.(check bool) "steady 20" true
    (Rat.equal (Platform.frame_overhead p ~frame:3) (ms 20))

(* --- engine error paths ------------------------------------------------------ *)

let test_engine_validation () =
  let net = wr_net () in
  let d = Derive.derive_exn ~wcet:(Derive.const_wcet (ms 10)) net in
  let sched =
    Sched.List_scheduler.schedule_with ~heuristic:Sched.Priority.Alap_edf
      ~n_procs:2 d.Derive.graph
  in
  let expect_invalid f =
    Alcotest.(check bool) "Invalid_argument" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () ->
      Engine.run net d sched { (Engine.default_config ~frames:0 ~n_procs:2 ()) with Engine.frames = 0 });
  (* platform/schedule processor mismatch *)
  expect_invalid (fun () ->
      Engine.run net d sched (Engine.default_config ~frames:1 ~n_procs:3 ()));
  (* unknown sporadic name *)
  expect_invalid (fun () ->
      Engine.run net d sched
        { (Engine.default_config ~frames:1 ~n_procs:2 ()) with
          Engine.sporadic = [ ("Ghost", []) ] });
  (* periodic process in the sporadic list *)
  expect_invalid (fun () ->
      Engine.run net d sched
        { (Engine.default_config ~frames:1 ~n_procs:2 ()) with
          Engine.sporadic = [ ("W", []) ] })

(* --- trace compliance checker ----------------------------------------------- *)

let fig1_trace () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (Sched.List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.Sched.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let cfg =
    { (Engine.default_config ~frames:3 ~n_procs:2 ()) with
      Engine.sporadic = [ ("CoefB", [ ms 50 ]) ];
      exec = Exec_time.uniform ~seed:4 ~min_fraction:0.4 }
  in
  (d, Engine.trace (Engine.run net d sched cfg))

let test_trace_check_clean () =
  let d, trace = fig1_trace () in
  Alcotest.(check (list string)) "engine traces are compliant" []
    (List.map
       (Format.asprintf "%a" Runtime.Exec_trace.pp_violation)
       (Runtime.Exec_trace.check d.Derive.graph trace))

let test_trace_check_detects_corruption () =
  let d, trace = fig1_trace () in
  let module ET = Runtime.Exec_trace in
  (* corrupt a record: start before invocation and stretch past WCET *)
  let corrupted_one = ref false in
  let corrupted =
    List.map
      (fun (r : ET.record) ->
        if (not r.ET.skipped) && not !corrupted_one then begin
          corrupted_one := true;
          { r with
            ET.start = Rat.sub r.ET.start (ms 1000);
            finish = Rat.add r.ET.finish (ms 1000) }
        end
        else r)
      trace
  in
  Alcotest.(check bool) "a record was corrupted" true !corrupted_one;
  let vs = ET.check d.Derive.graph corrupted in
  let has p = List.exists p vs in
  Alcotest.(check bool) "wcet violation found" true
    (has (function ET.Wcet_exceeded _ -> true | _ -> false));
  Alcotest.(check bool) "early start found" true
    (has (function ET.Started_before_invocation _ -> true | _ -> false))

let test_gantt_svg () =
  let d, trace = fig1_trace () in
  ignore d;
  let rows = Runtime.Exec_trace.to_gantt_rows trace in
  let svg = Rt_util.Gantt.to_svg ~title:"fig1 run" rows in
  let contains needle =
    let nl = String.length needle and hl = String.length svg in
    let rec scan i = i + nl <= hl && (String.sub svg i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "svg document" true (contains "<svg");
  Alcotest.(check bool) "closes" true (contains "</svg>");
  Alcotest.(check bool) "has bars" true (contains "<rect");
  Alcotest.(check bool) "mentions a job" true (contains "InputA[1]");
  Alcotest.(check bool) "title escaped and present" true (contains "fig1 run");
  (* rendering is a pure function of the rows *)
  Alcotest.(check bool) "svg deterministic" true
    (String.equal (Rt_util.Gantt.to_svg rows) (Rt_util.Gantt.to_svg rows))

(* --- Sec. II foundation: FP = uniprocessor FP with zero exec times ----------- *)

let random_params =
  QCheck2.Gen.(
    let* seed = int_range 0 30_000 in
    let* n_periodic = int_range 2 7 in
    let* n_sporadic = int_range 0 2 in
    return
      { Fppn_apps.Randgen.default_params with
        seed; n_periodic; n_sporadic; channel_density = 0.5 })

let prop_zero_exec_uniproc_equals_zero_delay =
  qprop
    "Sec. II: functional priorities = uniprocessor fixed priorities at zero \
     execution time"
    random_params
    (fun params ->
      let net = Fppn_apps.Randgen.network params in
      let horizon =
        (* a couple of the shortest periods is enough to see interleavings *)
        Rat.mul (Network.hyperperiod net) (Rat.of_int 1)
      in
      let sporadic =
        Fppn_apps.Randgen.random_traces ~seed:params.Fppn_apps.Randgen.seed
          ~horizon ~density:0.5 net
      in
      let zd = Semantics.run net (Semantics.invocations ~sporadic ~horizon net) in
      (* priorities aligned with the functional-priority topological rank *)
      let prio =
        List.map
          (fun p -> (Process.name (Network.process net p), Network.fp_rank net p))
          (List.init (Network.n_processes net) Fun.id)
      in
      let up =
        Uniproc_fp.run net
          { (Uniproc_fp.default_config ~wcet:(Derive.const_wcet Rat.one) ~horizon) with
            Uniproc_fp.sporadic;
            exec = Exec_time.scaled 0.0;  (* zero execution times *)
            priorities = Uniproc_fp.Explicit prio }
      in
      List.equal
        (fun (n1, h1) (n2, h2) -> n1 = n2 && List.equal V.equal h1 h2)
        (Semantics.signature zd)
        (Uniproc_fp.signature up))

let () =
  Alcotest.run "components"
    [
      ( "netstate",
        [
          Alcotest.test_case "routing errors" `Quick test_netstate_routing_errors;
          Alcotest.test_case "deferred writes" `Quick test_netstate_deferred_writes;
          Alcotest.test_case "reset" `Quick test_netstate_reset;
          Alcotest.test_case "instance skip/locals" `Quick test_instance_skip_and_locals;
        ] );
      ( "exec-time",
        [
          Alcotest.test_case "models" `Quick test_exec_time_models;
          Alcotest.test_case "deterministic jitter" `Quick
            test_exec_time_uniform_deterministic;
          Alcotest.test_case "platform validation" `Quick test_platform_validation;
        ] );
      ( "engine-validation",
        [ Alcotest.test_case "config errors" `Quick test_engine_validation ] );
      ( "trace-check",
        [
          Alcotest.test_case "clean trace" `Quick test_trace_check_clean;
          Alcotest.test_case "detects corruption" `Quick test_trace_check_detects_corruption;
          Alcotest.test_case "svg export" `Quick test_gantt_svg;
        ] );
      ( "sec2-foundation",
        [ prop_zero_exec_uniproc_equals_zero_delay ] );
    ]
