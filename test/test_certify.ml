(* Tests for static shardability certification (lib/lint/interference,
   lib/lint/certificate): pinned unit tests for the FPPN060/061/062
   diagnostics over inline .fppn sources, a byte-pinned certificate
   JSON schema with of_json/validate round-trips, a QCheck agreement
   property against the legacy job-level transitive closure, and the
   headline >16384-job engagement run the old [max_closure_jobs] cap
   made impossible. *)

module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module D = Fppn_lint.Diagnostic
module I = Fppn_lint.Interference
module Certificate = Fppn_lint.Certificate
module Model = Fppn_lint.Model
module Randgen = Fppn_apps.Randgen
module Campaign = Fppn_fuzz.Campaign
module Derive = Taskgraph.Derive
module Graph = Taskgraph.Graph
module Engine = Runtime.Engine
module List_scheduler = Sched.List_scheduler
module Metrics = Fppn_obs.Metrics

let qprop name ?(count = 100) ?print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ?print gen f)

let model_of_src src = Model.of_ast (Fppn_lang.Parser.parse src)
let cert_of_src src = Certificate.of_model (model_of_src src)

let codes ds = List.map (fun d -> D.code_id d.D.code) ds

let find_code c ds =
  match List.find_opt (fun d -> D.code_id d.D.code = c) ds with
  | Some d -> d
  | None ->
    Alcotest.failf "expected a %s finding, got: %s" c
      (String.concat ", " (codes ds))

(* --- FPPN060: proven-unordered channel pair ----------------------------- *)

let unordered_src =
  {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  process C : periodic 100 deadline 100 extern;
  channel blackboard c : A -> B;
}|}

let test_unordered () =
  let cert = cert_of_src unordered_src in
  Alcotest.(check bool) "not shardable" false (Certificate.shardable cert);
  let ds = Certificate.diagnostics cert in
  let d = find_code "FPPN060" ds in
  Alcotest.(check string) "pair subject" "A ./ B" d.D.subject;
  Alcotest.(check bool) "severity error" true (D.is_error d);
  Alcotest.(check bool) "message names the channel" true
    (let sub = "channel c" in
     let msg = d.D.message in
     let n = String.length sub in
     let rec at i =
       i + n <= String.length msg && (String.sub msg i n = sub || at (i + 1))
     in
     at 0);
  match cert.Certificate.channels with
  | [ cv ] -> (
    Alcotest.(check string) "channel" "c" cv.I.cv_channel;
    match cv.I.cv_verdict with
    | I.Unordered off ->
      Alcotest.(check string) "offending proc a" "A" off.I.off_proc_a;
      Alcotest.(check int) "offending k a" 1 off.I.off_k_a;
      Alcotest.(check string) "offending proc b" "B" off.I.off_proc_b;
      Alcotest.(check int) "offending k b" 1 off.I.off_k_b
    | _ -> Alcotest.fail "expected an Unordered verdict")
  | cs -> Alcotest.failf "expected one channel verdict, got %d" (List.length cs)

(* --- FPPN061: sporadic fold hazard -------------------------------------- *)

let hazard_src =
  {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  process S : sporadic 200 deadline 50 extern;
  channel blackboard c : S -> A;
  channel blackboard d : S -> B;
}|}

let test_hazard () =
  let cert = cert_of_src hazard_src in
  Alcotest.(check bool) "not shardable" false (Certificate.shardable cert);
  let ds = Certificate.diagnostics cert in
  let hs = List.filter (fun d -> D.code_id d.D.code = "FPPN061") ds in
  Alcotest.(check (list string))
    "one hazard per channel, sorted subjects"
    [ "channel c"; "channel d" ]
    (List.sort compare (List.map (fun d -> d.D.subject) hs));
  List.iter
    (fun (d : D.t) ->
      Alcotest.(check string) "severity warning" "warning"
        (D.severity_to_string d.D.severity))
    hs;
  Alcotest.(check bool) "no unordered finding" false
    (List.mem "FPPN060" (codes ds))

(* --- FPPN062: partition-cut hotspot (+ pinned JSON schema) -------------- *)

let hotspot_src =
  {|network hot {
  process A : periodic 100 deadline 100 wcet 40 extern;
  process B : periodic 100 deadline 100 wcet 40 extern;
  process C : periodic 100 deadline 100 wcet 1 extern;
  channel blackboard c : A -> B;
  priority A -> B;
}|}

let test_hotspot () =
  let cert = cert_of_src hotspot_src in
  (* a hotspot is informational: the certificate still accepts *)
  Alcotest.(check bool) "shardable" true (Certificate.shardable cert);
  let ds = Certificate.diagnostics cert in
  let d = find_code "FPPN062" ds in
  Alcotest.(check string) "subject" "channel c" d.D.subject;
  Alcotest.(check string) "severity info" "info"
    (D.severity_to_string d.D.severity);
  match cert.Certificate.hotspots with
  | [ h ] ->
    Alcotest.(check string) "pair utilization" "4/5"
      (Rat.to_string h.I.hs_pair_utilization);
    Alcotest.(check string) "total utilization" "81/100"
      (Rat.to_string h.I.hs_total_utilization)
  | hs -> Alcotest.failf "expected one hotspot, got %d" (List.length hs)

let test_json_schema_pinned () =
  let cert = cert_of_src hotspot_src in
  Alcotest.(check string) "certificate schema v1"
    ("{\"version\":1,\"network\":\"hot\",\"hyperperiod\":\"100\","
   ^ "\"classes\":3,\"shardable\":true,\"channels\":["
   ^ "{\"channel\":\"c\",\"writer\":\"A\",\"reader\":\"B\","
   ^ "\"verdict\":\"ordered\",\"witness\":[\"A\",\"B\"]}],\"hotspots\":["
   ^ "{\"channel\":\"c\",\"writer\":\"A\",\"reader\":\"B\","
   ^ "\"pair_utilization\":\"4/5\",\"total_utilization\":\"81/100\"}]}")
    (Certificate.to_json cert)

let test_json_round_trip () =
  List.iter
    (fun src ->
      let m = model_of_src src in
      let cert = Certificate.of_model m in
      match Certificate.of_json (Certificate.to_json cert) with
      | Error e -> Alcotest.failf "re-parse failed: %s" e
      | Ok cert' -> (
        Alcotest.(check bool) "round trip is structural identity" true
          (cert' = cert);
        match Certificate.validate cert' m with
        | Ok () -> ()
        | Error e -> Alcotest.failf "validate failed: %s" e))
    [ unordered_src; hazard_src; hotspot_src ]

let test_validate_rejects_forgery () =
  let m = model_of_src hotspot_src in
  let cert = Certificate.of_model m in
  let forged = { cert with Certificate.shardable = false } in
  Alcotest.(check bool) "flipped shardable bit rejected" true
    (Result.is_error (Certificate.validate forged m));
  let swapped =
    {
      cert with
      Certificate.channels =
        List.map
          (fun (c : I.channel_verdict) ->
            match c.I.cv_verdict with
            | I.Ordered w -> { c with I.cv_verdict = I.Ordered (List.rev w) }
            | _ -> c)
          cert.Certificate.channels;
    }
  in
  Alcotest.(check bool) "reversed witness rejected" true
    (Result.is_error (Certificate.validate swapped m))

(* --- QCheck: certificate vs legacy job-level closure -------------------- *)

let prop_agrees_with_closure =
  qprop "certificate agrees with the job-level transitive closure"
    ~count:200
    QCheck2.Gen.(pair (int_range 0 999_999) bool)
    (fun (seed, race) ->
      let prng = Prng.create seed in
      let spec = Campaign.draw_spec prng ~max_periodic:6 ~max_sporadic:2 in
      let spec =
        if race then
          match Randgen.seed_race prng spec with
          | Some (raced, _) -> raced
          | None -> spec
        else spec
      in
      let ok = Certificate.shardable (Certificate.of_model (Model.of_spec spec)) in
      match Randgen.build spec with
      | Error _ ->
        (* unbuildable = a planted Def. 2.1 violation: must be rejected *)
        not ok
      | Ok net -> (
        let wcet =
          Randgen.wcet ~scale:(Rat.make 1 25) (Derive.const_wcet Rat.one) net
        in
        match Derive.derive ~wcet net with
        | Error _ -> true
        | Ok d ->
          let g = d.Derive.graph in
          (* wherever the legacy check is computable (the old engine cap
             was 16384 jobs) the quotient sweep must agree exactly *)
          Graph.n_jobs g > 16384
          || ok = Engine.closure_conflicts_ordered g net))

(* --- the headline run: >16384 jobs through the sharded path ------------- *)

let test_wide_network_engages_sharded () =
  let spec = Randgen.wide_spec () in
  let net = Randgen.build_exn spec in
  let wcet =
    Randgen.wcet ~scale:(Rat.make 1 100_000) (Derive.const_wcet Rat.one) net
  in
  match Derive.derive ~wcet net with
  | Error e ->
    Alcotest.failf "derive failed: %s" (Format.asprintf "%a" Derive.pp_error e)
  | Ok d ->
    let g = d.Derive.graph in
    Alcotest.(check bool) "beyond the old closure cap" true
      (Graph.n_jobs g > 16384);
    let cert = Certificate.of_network net in
    Alcotest.(check bool) "certificate accepts" true
      (Certificate.shardable cert);
    let sched =
      List_scheduler.schedule_with ~heuristic:Sched.Priority.Alap_edf
        ~n_procs:4 g
    in
    let config = Engine.default_config ~frames:1 ~n_procs:4 () in
    let were = Metrics.enabled () in
    Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled were)
      (fun () ->
        let runs = Metrics.counter "engine.sharded_runs" in
        let fbs = Metrics.counter "engine.shard_fallbacks" in
        let runs0 = Metrics.counter_value runs
        and fbs0 = Metrics.counter_value fbs in
        let sharded = Engine.run_sharded ~shards:2 net d sched config in
        Alcotest.(check bool) "sharded path engaged" true
          (Metrics.counter_value runs > runs0);
        Alcotest.(check int) "no fallback" fbs0 (Metrics.counter_value fbs);
        let sequential = Engine.run net d sched config in
        Alcotest.(check bool) "bit-identical to the sequential engine" true
          (Engine.signature sharded = Engine.signature sequential))

let () =
  Alcotest.run "certify"
    [
      ( "codes",
        [
          Alcotest.test_case "unordered pair (FPPN060)" `Quick test_unordered;
          Alcotest.test_case "sporadic hazard (FPPN061)" `Quick test_hazard;
          Alcotest.test_case "partition hotspot (FPPN062)" `Quick test_hotspot;
        ] );
      ( "schema",
        [
          Alcotest.test_case "json pinned byte-for-byte" `Quick
            test_json_schema_pinned;
          Alcotest.test_case "json round trip + validate" `Quick
            test_json_round_trip;
          Alcotest.test_case "validate rejects forgeries" `Quick
            test_validate_rejects_forgery;
        ] );
      ( "differential",
        [
          prop_agrees_with_closure;
          Alcotest.test_case "wide network (>16384 jobs) runs sharded" `Slow
            test_wide_network_engages_sharded;
        ] );
    ]
