(* Multi-tenant service suite: MPR interface algebra, admission
   monotonicity (QCheck), the admission differential against the
   repo's other schedulability verdicts (Cosched.admit, Rta), and the
   end-to-end service with async producers and the per-tenant
   determinism oracle.  The heavy half of @service-gate. *)

module Rat = Rt_util.Rat
module Json = Rt_util.Json
module Pool = Rt_util.Pool
module Derive = Taskgraph.Derive
module Cosched = Sched.Cosched
module Rta = Sched.Rta
module Randgen = Fppn_apps.Randgen
module Mpr = Fppn_service.Mpr
module Admission = Fppn_service.Admission
module Tenant = Fppn_service.Tenant
module Ingest = Fppn_service.Ingest
module Service = Fppn_service.Service

let ms = Rat.of_int

let qprop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let task ?d ~c ~t name =
  {
    Mpr.t_name = name;
    wcet = c;
    period = t;
    deadline = (match d with Some d -> d | None -> t);
  }

(* --- Mpr unit tests ---------------------------------------------------- *)

let test_mpr_dbf () =
  let t = task "a" ~c:(ms 2) ~t:(ms 10) in
  Alcotest.(check string) "before deadline" "0" (Rat.to_string (Mpr.dbf t (ms 9)));
  Alcotest.(check string) "at deadline" "2" (Rat.to_string (Mpr.dbf t (ms 10)));
  Alcotest.(check string) "two periods" "4" (Rat.to_string (Mpr.dbf t (ms 20)));
  let constrained = task "b" ~c:(ms 1) ~t:(ms 10) ~d:(ms 4) in
  Alcotest.(check string) "constrained deadline" "1"
    (Rat.to_string (Mpr.dbf constrained (ms 4)))

let test_mpr_sbf_monotone () =
  let mk budget = { Mpr.period = ms 10; budget; concurrency = 2 } in
  List.iter
    (fun len ->
      let a = Mpr.sbf (mk (ms 4)) len and b = Mpr.sbf (mk (ms 8)) len in
      Alcotest.(check bool)
        (Printf.sprintf "sbf monotone in budget at t=%s" (Rat.to_string len))
        true
        Rat.(a <= b);
      Alcotest.(check bool) "sbf non-negative" true (Rat.sign a >= 0))
    [ ms 0; ms 5; ms 10; ms 25; ms 100 ]

let test_mpr_generate () =
  let ts =
    [ task "a" ~c:(ms 2) ~t:(ms 20); task "b" ~c:(ms 5) ~t:(ms 50) ]
  in
  match Mpr.generate_interface ts with
  | None -> Alcotest.fail "no interface for a 20%-utilization pair"
  | Some iface ->
    Alcotest.(check bool) "generated interface is schedulable" true
      (Mpr.is_schedulable_edf ts iface);
    Alcotest.(check bool) "bandwidth covers utilization" true
      Rat.(Mpr.utilization ts <= Mpr.bandwidth iface);
    Alcotest.(check bool) "budget within concurrency ceiling" true
      Rat.(iface.Mpr.budget <= of_int iface.Mpr.concurrency * iface.Mpr.period)

let test_mpr_generate_none () =
  (* five period-100 tasks at 70 each: carry-in kills every m' <= 5 *)
  let ts = List.init 5 (fun i -> task (string_of_int i) ~c:(ms 70) ~t:(ms 100)) in
  Alcotest.(check bool) "no interface covers U=3.5 with carry-in" true
    (Mpr.generate_interface ts = None)

let test_mpr_empty () =
  match Mpr.generate_interface [] with
  | None -> Alcotest.fail "empty task set needs no supply"
  | Some iface ->
    Alcotest.(check bool) "zero budget" true (Rat.sign iface.Mpr.budget = 0);
    Alcotest.(check bool) "schedulable" true (Mpr.is_schedulable_edf [] iface)

let test_mpr_compose () =
  let iface bw m' =
    { Mpr.period = ms 10; budget = Rat.mul bw (ms 10); concurrency = m' }
  in
  Alcotest.(check bool) "fits" true
    (Mpr.compose [ iface Rat.one 1; iface Rat.one 2 ] ~procs:2 = Ok ());
  (match Mpr.compose [ iface (Rat.make 3 2) 2; iface Rat.one 2 ] ~procs:2 with
  | Error (Mpr.Utilization { total; procs = 2 }) ->
    Alcotest.(check string) "total bandwidth" "5/2" (Rat.to_string total)
  | _ -> Alcotest.fail "expected utilization overflow");
  match Mpr.compose [ iface Rat.one 3 ] ~procs:2 with
  | Error (Mpr.Concurrency { required = 3; procs = 2 }) -> ()
  | _ -> Alcotest.fail "expected concurrency overflow"

let test_mpr_taskset_folds_servers () =
  (* one periodic user (period 50) + one sporadic (min period 100,
     deadline 200, burst 2): the sporadic folds to its server with
     period T' = 50 and deadline d - T' = 150, demand burst * C *)
  let spec =
    {
      Randgen.label = "fold";
      periods = [| 50 |];
      chans = [];
      sporadics =
        [
          {
            Randgen.sp_name = "S";
            sp_user = 0;
            sp_burst = 2;
            sp_min_period = 100;
            sp_higher = true;
          };
        ];
    }
  in
  let net = Randgen.build_exn spec in
  let wcet = Derive.wcet_of_list (ms 1) [ ("S", ms 3) ] in
  let d = Derive.derive_exn ~wcet net in
  let ts = Mpr.taskset_of_network ~wcet net d in
  let server = List.find (fun t -> t.Mpr.t_name = "S") ts in
  Alcotest.(check string) "server period" "50" (Rat.to_string server.Mpr.period);
  Alcotest.(check string) "server deadline" "150"
    (Rat.to_string server.Mpr.deadline);
  Alcotest.(check string) "server demand = burst * C" "6"
    (Rat.to_string server.Mpr.wcet)

(* --- admission --------------------------------------------------------- *)

let decide_net name wcet net ~procs ~resident =
  let d = Derive.derive_exn ~wcet net in
  Admission.decide ~procs ~resident (Admission.candidate ~name ~wcet net d)

let heavy_net () =
  let params =
    {
      Randgen.seed = 42;
      n_periodic = 5;
      n_sporadic = 0;
      periods = [ 100 ];
      channel_density = 0.0;
      max_burst = 1;
    }
  in
  let net = Randgen.network params in
  let wcet =
    Randgen.wcet ~scale:(Rat.make 7 10) (Derive.const_wcet Rat.one) net
  in
  (net, wcet)

let test_admission_reason_json () =
  let reasons =
    [
      Admission.Duplicate_tenant "x";
      Admission.Load_bound { load = Rat.make 5 2; lower_bound = 3; procs = 2 };
      Admission.No_interface { utilization = Rat.make 7 2 };
      Admission.Compose_utilization { total = Rat.make 9 2; procs = 4 };
      Admission.Compose_concurrency { required = 5; procs = 4 };
      Admission.No_schedule { procs = 4 };
    ]
  in
  List.iter
    (fun r ->
      let json = Json.to_string (Admission.reason_to_json r) in
      match Json.parse json with
      | Json.Obj _ as doc ->
        Alcotest.(check bool)
          (Printf.sprintf "reason %s has a code" json)
          true
          (Option.bind (Json.member "code" doc) Json.as_string <> None)
      | _ -> Alcotest.failf "reason did not parse as an object: %s" json)
    reasons

let test_admission_fig1 () =
  let net = Fppn_apps.Fig1.network () and wcet = Fppn_apps.Fig1.wcet in
  (match decide_net "fig1" wcet net ~procs:4 ~resident:[] with
  | Admission.Accepted iface ->
    Alcotest.(check bool) "interface fits the platform" true
      (Mpr.compose [ iface ] ~procs:4 = Ok ())
  | Admission.Rejected r ->
    Alcotest.failf "fig1 rejected at M=4: %s"
      (Json.to_string (Admission.reason_to_json r)));
  match decide_net "fig1" wcet net ~procs:1 ~resident:[] with
  | Admission.Rejected (Admission.Load_bound { lower_bound = 2; procs = 1; _ }) ->
    ()
  | _ -> Alcotest.fail "fig1 must fail the Prop. 3.1 bound at M=1"

let test_admission_heavy_mpr_reason () =
  let net, wcet = heavy_net () in
  match decide_net "heavy" wcet net ~procs:4 ~resident:[] with
  | Admission.Rejected (Admission.No_interface { utilization }) ->
    Alcotest.(check string) "utilization reported" "7/2"
      (Rat.to_string utilization)
  | other ->
    Alcotest.failf "expected no_interface, got %s"
      (Json.to_string (Admission.decision_to_json other))

(* The differential: the MPR verdict against the repo's other
   admission/schedulability analyses on the built-in applications.
   The tests are logically one-sided (the analyses bound different
   things) but the outcomes on these fixed inputs are deterministic,
   so both sides are pinned. *)
let test_admission_differential () =
  let apps =
    [
      ("fig1", Fppn_apps.Fig1.network (), (Fppn_apps.Fig1.wcet : Derive.wcet_map));
      ("automotive", Fppn_apps.Automotive.network (), Fppn_apps.Automotive.wcet);
    ]
  in
  List.iter
    (fun (name, net, wcet) ->
      let d = Derive.derive_exn ~wcet net in
      let cand = Admission.candidate ~name ~wcet net d in
      List.iter
        (fun m ->
          match Admission.decide ~procs:m ~resident:[] cand with
          | Admission.Accepted _ ->
            (* MPR accepted: Prop. 3.1 must agree (it is checked first),
               and MHEFT co-scheduling admission must also host the app
               alone on the same platform *)
            Alcotest.(check bool)
              (Printf.sprintf "%s lower bound fits M=%d" name m)
              true
              (cand.Admission.c_lower_bound <= m);
            (match
               Cosched.admit ~n_procs:m ~admitted:[]
                 { Cosched.app_name = name; app_priority = 0; graph = d.Derive.graph }
             with
            | Cosched.Admitted _ -> ()
            | Cosched.Rejected { reason; _ } ->
              Alcotest.failf "%s: MPR admits at M=%d but Cosched rejects: %s"
                name m reason)
          | Admission.Rejected _ ->
            Alcotest.failf "%s must be admitted at M=%d" name m)
        [ 2; 4 ])
    apps;
  (* the two co-resident: MPR composition and Cosched.admit both accept *)
  let fig1_net = Fppn_apps.Fig1.network () in
  let auto_net = Fppn_apps.Automotive.network () in
  let fig1_d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet fig1_net in
  let auto_d = Derive.derive_exn ~wcet:Fppn_apps.Automotive.wcet auto_net in
  let fig1_iface =
    match
      decide_net "fig1" Fppn_apps.Fig1.wcet fig1_net ~procs:4 ~resident:[]
    with
    | Admission.Accepted i -> i
    | Admission.Rejected _ -> Alcotest.fail "fig1 at M=4"
  in
  (match
     decide_net "automotive" Fppn_apps.Automotive.wcet auto_net ~procs:4
       ~resident:[ fig1_iface ]
   with
  | Admission.Accepted _ -> ()
  | Admission.Rejected r ->
    Alcotest.failf "automotive alongside fig1 at M=4: %s"
      (Json.to_string (Admission.reason_to_json r)));
  (match
     Cosched.admit ~n_procs:4
       ~admitted:
         [ { Cosched.app_name = "fig1"; app_priority = 0; graph = fig1_d.Derive.graph } ]
       { Cosched.app_name = "automotive"; app_priority = 1; graph = auto_d.Derive.graph }
   with
  | Cosched.Admitted _ -> ()
  | Cosched.Rejected { reason; _ } ->
    Alcotest.failf "cosched rejects automotive alongside fig1: %s" reason);
  (* the over-demanding tenant: both admissions turn it away *)
  let heavy, heavy_wcet = heavy_net () in
  let heavy_d = Derive.derive_exn ~wcet:heavy_wcet heavy in
  (match decide_net "heavy" heavy_wcet heavy ~procs:4 ~resident:[] with
  | Admission.Rejected _ -> ()
  | Admission.Accepted _ -> Alcotest.fail "heavy must be rejected at M=4");
  (match
     Cosched.admit ~n_procs:4 ~admitted:[]
       { Cosched.app_name = "heavy"; app_priority = 0; graph = heavy_d.Derive.graph }
   with
  | Cosched.Rejected _ -> ()
  | Cosched.Admitted _ -> Alcotest.fail "cosched must also reject heavy at M=4");
  (* uniprocessor: MPR admission at M=1 agrees with the RM response-time
     analysis on the automotive application *)
  (match
     decide_net "automotive" Fppn_apps.Automotive.wcet auto_net ~procs:1
       ~resident:[]
   with
  | Admission.Accepted _ -> ()
  | Admission.Rejected r ->
    Alcotest.failf "automotive rejected at M=1: %s"
      (Json.to_string (Admission.reason_to_json r)));
  Alcotest.(check bool) "RTA agrees automotive is uniproc schedulable" true
    (Rta.schedulable (Rta.analyse ~wcet:Fppn_apps.Automotive.wcet auto_net))

(* --- QCheck: admission monotonicity ------------------------------------ *)

(* Synthetic candidates straight from task sets: period drawn from a
   small grid, WCET a fraction of it, implicit deadlines. *)
let taskset_gen =
  QCheck2.Gen.(
    let* n = int_range 1 3 in
    list_size (return n)
      (let* p = oneofl [ 10; 20; 50; 100 ] in
       let* k = int_range 1 48 in
       return (p, k)))

let tenants_gen =
  QCheck2.Gen.(list_size (int_range 1 6) taskset_gen)

let candidate_of_taskset name raw =
  let ts =
    List.mapi
      (fun i (p, k) ->
        task
          (Printf.sprintf "%s_%d" name i)
          ~c:(Rat.div (Rat.mul (Rat.of_int k) (ms p)) (ms 256))
          ~t:(ms p))
      raw
  in
  let u = Mpr.utilization ts in
  {
    Admission.c_name = name;
    c_load = u;
    c_lower_bound = max 1 (Rat.ceil u);
    c_taskset = ts;
  }

let admit_all ~procs cands =
  List.fold_left
    (fun (resident, verdicts) cand ->
      match Admission.decide ~procs ~resident cand with
      | Admission.Accepted iface -> (resident @ [ iface ], verdicts @ [ true ])
      | Admission.Rejected _ -> (resident, verdicts @ [ false ]))
    ([], []) cands

let prop_admission_monotone_in_m =
  qprop "one decision, fixed residents: admitted at M implies admitted at M+1"
    QCheck2.Gen.(
      let* ts = tenants_gen in
      let* m = int_range 1 3 in
      return (ts, m))
    (fun (raw, m) ->
      let cands = List.mapi (fun i r -> candidate_of_taskset (Printf.sprintf "t%d" i) r) raw in
      (* walk the sequential admission at M; at every step replay the
         same (resident, candidate) decision at M+1 *)
      let rec walk resident = function
        | [] -> true
        | cand :: rest -> (
          match Admission.decide ~procs:m ~resident cand with
          | Admission.Accepted iface ->
            (match Admission.decide ~procs:(m + 1) ~resident cand with
            | Admission.Accepted _ -> walk (resident @ [ iface ]) rest
            | Admission.Rejected _ -> false)
          | Admission.Rejected _ -> walk resident rest)
      in
      walk [] cands)

let prop_admission_set_monotone =
  qprop "a fully admitted tenant set stays fully admitted at M+1"
    QCheck2.Gen.(
      let* ts = tenants_gen in
      let* m = int_range 1 3 in
      return (ts, m))
    (fun (raw, m) ->
      let cands = List.mapi (fun i r -> candidate_of_taskset (Printf.sprintf "t%d" i) r) raw in
      let _, verdicts = admit_all ~procs:m cands in
      (not (List.for_all Fun.id verdicts))
      || snd (admit_all ~procs:(m + 1) cands) = verdicts)

let prop_retire_never_flips =
  qprop "retiring a tenant never flips a resident's verdict"
    QCheck2.Gen.(
      let* ts = tenants_gen in
      let* m = int_range 1 4 in
      return (ts, m))
    (fun (raw, m) ->
      let cands = List.mapi (fun i r -> candidate_of_taskset (Printf.sprintf "t%d" i) r) raw in
      let accepted =
        List.filter_map
          (fun (cand, ok) -> if ok then Some cand else None)
          (List.combine cands (snd (admit_all ~procs:m cands)))
      in
      let interfaces =
        List.map
          (fun c ->
            match Mpr.generate_interface c.Admission.c_taskset with
            | Some i -> i
            | None -> Alcotest.fail "accepted candidate lost its interface")
          accepted
      in
      (* drop each resident in turn: every survivor must still be
         admitted against the remaining interfaces *)
      List.for_all
        (fun retired ->
          List.for_all2
            (fun cand own ->
              own == List.nth interfaces retired
              ||
              let resident =
                List.filteri
                  (fun j i -> j <> retired && not (i == own))
                  interfaces
              in
              match Admission.decide ~procs:m ~resident cand with
              | Admission.Accepted _ -> true
              | Admission.Rejected _ -> false)
            accepted interfaces)
        (List.init (List.length accepted) Fun.id))

(* --- ingest ------------------------------------------------------------ *)

let test_ingest_legalize () =
  let gen = Fppn.Event.sporadic ~burst:2 ~min_period:(ms 100) ~deadline:(ms 150) () in
  let generators = [ ("S", gen) ] in
  let ev s = { Ingest.ev_tenant = "t"; ev_process = "S"; ev_stamp = ms s } in
  let traces, dropped =
    Ingest.legalize ~generators ~horizon:(ms 400)
      [ ev 30; ev 10; ev 20; ev 140; ev 500; ev (-5);
        { Ingest.ev_tenant = "t"; ev_process = "nope"; ev_stamp = ms 1 } ]
  in
  (* 10 and 20 survive the (2,100) window, 30 is thinned; 140 opens a
     new window; 500 is past the horizon, -5 and "nope" are dropped *)
  Alcotest.(check int) "dropped count" 4 dropped;
  match traces with
  | [ ("S", stamps) ] ->
    Alcotest.(check (list string)) "kept stamps" [ "10"; "20"; "140" ]
      (List.map Rat.to_string stamps);
    Alcotest.(check bool) "trace is engine-legal" true
      (Fppn.Event.is_valid_sporadic_trace gen stamps)
  | _ -> Alcotest.fail "expected one trace for S"

let prop_legalize_always_legal =
  qprop "legalized traces always satisfy the sporadic constraint"
    QCheck2.Gen.(
      let* burst = int_range 1 3 in
      let* stamps = list_size (int_range 0 40) (int_range (-10) 500) in
      return (burst, stamps))
    (fun (burst, stamps) ->
      let gen =
        Fppn.Event.sporadic ~burst ~min_period:(ms 50) ~deadline:(ms 100) ()
      in
      let events =
        List.map
          (fun s -> { Ingest.ev_tenant = "t"; ev_process = "S"; ev_stamp = ms s })
          stamps
      in
      let traces, _ =
        Ingest.legalize ~generators:[ ("S", gen) ] ~horizon:(ms 400) events
      in
      List.for_all
        (fun (_, t) -> Fppn.Event.is_valid_sporadic_trace gen t)
        traces)

(* --- end-to-end service ------------------------------------------------ *)

let small_tenant_net i =
  let params =
    {
      Randgen.seed = 9000 + (7919 * i);
      n_periodic = 2;
      n_sporadic = 1;
      periods = [ 50; 100 ];
      channel_density = 0.4;
      max_burst = 2;
    }
  in
  let net = Randgen.network params in
  let wcet =
    Randgen.wcet ~scale:(Rat.make 1 2000) (Derive.const_wcet Rat.one) net
  in
  (net, wcet)

let register_small svc i =
  let net, wcet = small_tenant_net i in
  Service.register svc ~name:(Printf.sprintf "t%02d" i) ~wcet net

let test_service_end_to_end () =
  let svc = Service.create ~queue_capacity:1024 ~procs:4 ~frames:2 () in
  for i = 0 to 19 do
    match register_small svc i with
    | Ok _ -> ()
    | Error r ->
      Alcotest.failf "tenant %d rejected: %s" i
        (Json.to_string (Admission.reason_to_json r))
  done;
  Alcotest.(check int) "20 residents" 20 (List.length (Service.tenants svc));
  let targets =
    Array.of_list
      (List.filter_map
         (fun ten ->
           match Tenant.sporadic_events ten with
           | [] -> None
           | sp -> Some (ten.Tenant.name, Array.of_list (List.map fst sp)))
         (Service.tenants svc))
  in
  Pool.with_pool ~jobs:3 (fun pool ->
      for epoch = 1 to 2 do
        (* three concurrent producer domains feed the MPSC queue *)
        let doms =
          List.init 3 (fun p ->
              Domain.spawn (fun () ->
                  let prng = Rt_util.Prng.create ((epoch * 100) + p) in
                  for _ = 1 to 50 do
                    let tname, sp =
                      targets.(Rt_util.Prng.int prng (Array.length targets))
                    in
                    let process = sp.(Rt_util.Prng.int prng (Array.length sp)) in
                    let stamp = Rat.of_int (Rt_util.Prng.int prng 200) in
                    ignore (Service.submit svc ~tenant:tname ~process ~stamp)
                  done))
        in
        List.iter Domain.join doms;
        let r = Service.run_epoch ~pool svc in
        Alcotest.(check int) "epoch number" epoch r.Service.epoch;
        Alcotest.(check int) "every event accounted for" 150
          (r.Service.events_drained);
        Alcotest.(check int) "drained = consumed + dropped"
          r.Service.events_drained
          (r.Service.events_consumed + r.Service.events_dropped);
        Alcotest.(check bool) "work happened" true (r.Service.jobs_executed > 0)
      done;
      (* the oracle: every tenant's co-resident epoch equals its
         standalone sequential run *)
      List.iter
        (fun (name, ok) ->
          Alcotest.(check bool) (Printf.sprintf "oracle %s" name) true ok)
        (Service.verify ~pool svc))

let test_service_backpressure () =
  let svc = Service.create ~queue_capacity:8 ~procs:2 ~frames:1 () in
  (match register_small svc 0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "tenant 0 rejected");
  let tname = (List.hd (Service.tenants svc)).Tenant.name in
  let sp =
    match Tenant.sporadic_events (List.hd (Service.tenants svc)) with
    | (n, _) :: _ -> n
    | [] -> Alcotest.fail "tenant has no sporadic process"
  in
  let accepted = ref 0 in
  for i = 1 to 100 do
    if Service.submit svc ~tenant:tname ~process:sp ~stamp:(ms i) then
      incr accepted
  done;
  Alcotest.(check int) "queue holds exactly its capacity" 8 !accepted;
  Alcotest.(check int) "the rest counted as backpressure" 92
    (Service.backpressure svc);
  let r = Service.run_epoch svc in
  Alcotest.(check int) "drained what fit" 8 r.Service.events_drained

let test_service_retire_and_duplicate () =
  let svc = Service.create ~procs:4 ~frames:1 () in
  List.iter
    (fun i ->
      match register_small svc i with
      | Ok _ -> ()
      | Error _ -> Alcotest.failf "tenant %d rejected" i)
    [ 0; 1; 2 ];
  (match register_small svc 1 with
  | Error (Admission.Duplicate_tenant _) -> ()
  | _ -> Alcotest.fail "duplicate registration must be rejected");
  Alcotest.(check bool) "retire t01" true (Service.retire svc "t01");
  Alcotest.(check bool) "retire is idempotent" false (Service.retire svc "t01");
  Alcotest.(check int) "two residents left" 2
    (List.length (Service.tenants svc));
  Alcotest.(check bool) "t01 gone" true (Service.find svc "t01" = None);
  match register_small svc 1 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "freed bandwidth admits the tenant again"

let () =
  Alcotest.run "service"
    [
      ( "mpr",
        [
          Alcotest.test_case "dbf" `Quick test_mpr_dbf;
          Alcotest.test_case "sbf monotone" `Quick test_mpr_sbf_monotone;
          Alcotest.test_case "generate" `Quick test_mpr_generate;
          Alcotest.test_case "generate none" `Quick test_mpr_generate_none;
          Alcotest.test_case "empty taskset" `Quick test_mpr_empty;
          Alcotest.test_case "compose" `Quick test_mpr_compose;
          Alcotest.test_case "server folding" `Quick
            test_mpr_taskset_folds_servers;
        ] );
      ( "admission",
        [
          Alcotest.test_case "reasons are machine-readable" `Quick
            test_admission_reason_json;
          Alcotest.test_case "fig1 verdicts" `Quick test_admission_fig1;
          Alcotest.test_case "heavy: MPR reason" `Quick
            test_admission_heavy_mpr_reason;
          Alcotest.test_case "differential vs Cosched/RTA" `Quick
            test_admission_differential;
        ] );
      ( "properties",
        [
          prop_admission_monotone_in_m;
          prop_admission_set_monotone;
          prop_retire_never_flips;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "legalize" `Quick test_ingest_legalize;
          prop_legalize_always_legal;
        ] );
      ( "service",
        [
          Alcotest.test_case "end to end with async producers" `Quick
            test_service_end_to_end;
          Alcotest.test_case "backpressure" `Quick test_service_backpressure;
          Alcotest.test_case "retire + duplicate" `Quick
            test_service_retire_and_duplicate;
        ] );
    ]
