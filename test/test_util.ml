module Pqueue = Rt_util.Pqueue
module Iheap = Rt_util.Iheap
module Bitset = Rt_util.Bitset
module Digraph = Rt_util.Digraph
module Prng = Rt_util.Prng
module Mpsc_ring = Rt_util.Mpsc_ring
module Json = Rt_util.Json
module Table = Rt_util.Table
module Gantt = Rt_util.Gantt
module Dot = Rt_util.Dot

let qprop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- Pqueue ---------------------------------------------------------- *)

let test_pqueue_basic () =
  let q = Pqueue.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  List.iter (Pqueue.push q) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Pqueue.length q);
  Alcotest.(check (option int)) "peek min" (Some 1) (Pqueue.peek q);
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 3; 4; 5 ] (Pqueue.drain q);
  Alcotest.(check bool) "empty after drain" true (Pqueue.is_empty q);
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      ignore (Pqueue.pop_exn q))

let prop_pqueue_sorts =
  qprop "pqueue drains in sorted order"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun l ->
      let q = Pqueue.of_list ~cmp:Int.compare l in
      Pqueue.drain q = List.sort Int.compare l)

let prop_pqueue_interleaved =
  qprop "pqueue interleaved push/pop preserves heap property"
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 100))
    (fun ops ->
      let q = Pqueue.create ~cmp:Int.compare in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun x ->
          if x mod 3 = 0 && not (Pqueue.is_empty q) then begin
            let top = Pqueue.pop_exn q in
            let expected = List.fold_left min (List.hd !model) !model in
            if top <> expected then ok := false;
            model :=
              (let removed = ref false in
               List.filter (fun y ->
                   if (not !removed) && y = expected then begin
                     removed := true;
                     false
                   end
                   else true) !model)
          end
          else begin
            Pqueue.push q x;
            model := x :: !model
          end)
        ops;
      !ok)

let prop_pqueue_stable =
  (* Equal keys must drain in insertion order: push (key, stamp) pairs
     ordered only on key; within a key the stamps are an increasing run. *)
  qprop "pqueue stable under duplicate keys"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 5))
    (fun keys ->
      let cmp (a, _) (b, _) = Int.compare a b in
      let q = Pqueue.create ~cmp in
      List.iteri (fun i k -> Pqueue.push q (k, i)) keys;
      let drained = Pqueue.drain q in
      (* same multiset, keys nondecreasing, stamps increasing within a key *)
      let rec ordered = function
        | (k, i) :: ((k', i') :: _ as rest) ->
          k <= k' && (k <> k' || i < i') && ordered rest
        | _ -> true
      in
      List.sort compare drained
      = List.sort compare (List.mapi (fun i k -> (k, i)) keys)
      && ordered drained)

(* --- Iheap ------------------------------------------------------------ *)

let iheap_drain h =
  let rec go acc =
    if Iheap.is_empty h then List.rev acc
    else begin
      let k = Iheap.top_key h and p = Iheap.top_pay h in
      Iheap.drop h;
      go ((k, p) :: acc)
    end
  in
  go []

let test_iheap_basic () =
  let h = Iheap.create ~capacity:1 () in
  Alcotest.(check bool) "empty" true (Iheap.is_empty h);
  List.iter (fun k -> Iheap.push h ~key:k ~pay:(k * 7)) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "length" 5 (Iheap.length h);
  Alcotest.(check int) "top key" 1 (Iheap.top_key h);
  Alcotest.(check int) "top pay rides its key" 7 (Iheap.top_pay h);
  Alcotest.(check (list (pair int int)))
    "drains in key order"
    [ (1, 7); (1, 7); (3, 21); (4, 28); (5, 35) ]
    (iheap_drain h);
  Alcotest.(check bool) "empty after drain" true (Iheap.is_empty h);
  Alcotest.check_raises "top_key on empty"
    (Invalid_argument "Iheap.top_key: empty heap") (fun () ->
      ignore (Iheap.top_key h));
  Iheap.push h ~key:9 ~pay:0;
  Iheap.clear h;
  Alcotest.(check int) "clear empties" 0 (Iheap.length h)

let prop_iheap_sorts =
  qprop "iheap drains keys in sorted order with payloads attached"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range (-1000) 1000))
    (fun keys ->
      (* capacity 1 forces the backing arrays through every doubling *)
      let h = Iheap.create ~capacity:1 () in
      List.iter (fun k -> Iheap.push h ~key:k ~pay:(k lxor 0x2a)) keys;
      let drained = iheap_drain h in
      List.map fst drained = List.sort Int.compare keys
      && List.for_all (fun (k, p) -> p = k lxor 0x2a) drained)

let prop_iheap_interleaved =
  (* pushes interleaved with pops, mirrored against a sorted-list model *)
  qprop "iheap matches a sorted-list model under interleaving"
    QCheck2.Gen.(list_size (int_range 0 200) (option (int_range 0 1000)))
    (fun ops ->
      let h = Iheap.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some k ->
            Iheap.push h ~key:k ~pay:k;
            model := List.sort Int.compare (k :: !model);
            true
          | None -> (
            match !model with
            | [] -> Iheap.is_empty h
            | m :: rest ->
              let ok = (not (Iheap.is_empty h)) && Iheap.top_key h = m in
              if ok then Iheap.drop h;
              model := rest;
              ok))
        ops
      && Iheap.length h = List.length !model)

(* --- Bitset ---------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "fresh is empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 64; 99 ] (Bitset.to_list s);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index 100 out of [0,100)") (fun () ->
      ignore (Bitset.mem s 100))

let test_bitset_union_inter () =
  let a = Bitset.create 20 and b = Bitset.create 20 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 2; 3; 4 ];
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.to_list i)

module IntSet = Set.Make (Int)

let prop_bitset_vs_set =
  qprop "bitset agrees with Set on random operations"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 199))
    (fun ops ->
      let bs = Bitset.create 200 in
      let set = ref IntSet.empty in
      List.iteri
        (fun i x ->
          if i mod 4 = 3 then begin
            Bitset.remove bs x;
            set := IntSet.remove x !set
          end
          else begin
            Bitset.add bs x;
            set := IntSet.add x !set
          end)
        ops;
      Bitset.to_list bs = IntSet.elements !set
      && Bitset.cardinal bs = IntSet.cardinal !set)

(* --- Digraph --------------------------------------------------------- *)

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3, plus the redundant 0 -> 3 *)
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 1 3;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 0 3;
  g

let test_digraph_basic () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Digraph.n_nodes g);
  Alcotest.(check int) "edges" 5 (Digraph.n_edges g);
  Alcotest.(check bool) "has 0->3" true (Digraph.has_edge g 0 3);
  Digraph.add_edge g 0 3;
  Alcotest.(check int) "add is idempotent" 5 (Digraph.n_edges g);
  Digraph.remove_edge g 0 3;
  Alcotest.(check bool) "removed" false (Digraph.has_edge g 0 3);
  Alcotest.(check int) "edges after removal" 4 (Digraph.n_edges g);
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Digraph.succs g 0);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (List.sort Int.compare (Digraph.preds g 3))

let test_digraph_topo () =
  let g = diamond () in
  Alcotest.(check (option (list int))) "topo order" (Some [ 0; 1; 2; 3 ])
    (Digraph.topo_sort g);
  Alcotest.(check bool) "acyclic" true (Digraph.is_acyclic g);
  Digraph.add_edge g 3 0;
  Alcotest.(check (option (list int))) "cyclic -> None" None (Digraph.topo_sort g);
  match Digraph.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    Alcotest.(check bool) "cycle is non-empty" true (List.length cycle >= 2)

let test_transitive_reduction () =
  let g = diamond () in
  let r = Digraph.transitive_reduction g in
  Alcotest.(check int) "redundant edge removed" 4 (Digraph.n_edges r);
  Alcotest.(check bool) "0->3 gone" false (Digraph.has_edge r 0 3);
  Alcotest.(check bool) "0->1 kept" true (Digraph.has_edge r 0 1);
  (* reachability is preserved *)
  Alcotest.(check bool) "0 still reaches 3" true (Digraph.path_exists r 0 3)

let test_transitive_closure_cyclic_rejected () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 0;
  Alcotest.check_raises "closure of cyclic"
    (Invalid_argument "Digraph.transitive_closure: graph is cyclic") (fun () ->
      ignore (Digraph.transitive_closure g))

let random_dag_gen =
  QCheck2.Gen.(
    let* n = int_range 2 25 in
    let* edges =
      list_size (int_range 0 80) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (n, List.filter_map (fun (a, b) -> if a < b then Some (a, b) else None) edges))

let build_dag (n, edges) =
  let g = Digraph.create n in
  List.iter (fun (a, b) -> Digraph.add_edge g a b) edges;
  g

let prop_reduction_preserves_reachability =
  qprop "transitive reduction preserves reachability" random_dag_gen
    (fun spec ->
      let g = build_dag spec in
      let r = Digraph.transitive_reduction g in
      let n = Digraph.n_nodes g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let from_g = Digraph.reachable_from g u
        and from_r = Digraph.reachable_from r u in
        if not (Bitset.equal from_g from_r) then ok := false
      done;
      !ok)

let prop_reduction_minimal =
  qprop "every kept edge is non-redundant" random_dag_gen (fun spec ->
      let g = build_dag spec in
      let r = Digraph.transitive_reduction g in
      List.for_all
        (fun (u, v) ->
          (* removing (u,v) must lose reachability *)
          let r' = Digraph.copy r in
          Digraph.remove_edge r' u v;
          not (Digraph.path_exists r' u v))
        (Digraph.edges r))

let prop_topo_respects_edges =
  qprop "topological order respects edges" random_dag_gen (fun spec ->
      let g = build_dag spec in
      match Digraph.topo_sort g with
      | None -> false
      | Some order ->
        let pos = Array.make (Digraph.n_nodes g) 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        List.for_all (fun (u, v) -> pos.(u) < pos.(v)) (Digraph.edges g))

(* --- Prng ------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  let seq g = List.init 20 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq a) (seq b);
  let c = Prng.create 124 in
  Alcotest.(check bool) "different seed, different stream" true
    (seq (Prng.create 123) <> seq c)

let test_prng_copy_split () =
  let g = Prng.create 7 in
  let g' = Prng.copy g in
  Alcotest.(check int) "copy continues identically" (Prng.int g 1_000_000)
    (Prng.int g' 1_000_000);
  let s1 = Prng.split g in
  let xs = List.init 10 (fun _ -> Prng.int s1 100) in
  Alcotest.(check int) "split stream has expected length" 10 (List.length xs)

let test_prng_bounds () =
  let g = Prng.create 99 in
  for _ = 1 to 1000 do
    let x = Prng.int g 7 in
    Alcotest.(check bool) "int in bounds" true (x >= 0 && x < 7);
    let f = Prng.float g 2.5 in
    Alcotest.(check bool) "float in bounds" true (f >= 0.0 && f < 2.5);
    let y = Prng.int_in g 3 9 in
    Alcotest.(check bool) "int_in inclusive" true (y >= 3 && y <= 9)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_prng_shuffle_pick () =
  let g = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  Alcotest.(check (list int)) "shuffle is a permutation"
    (List.init 50 Fun.id)
    (List.sort Int.compare (Array.to_list a));
  let x = Prng.pick g [ 1; 2; 3 ] in
  Alcotest.(check bool) "pick member" true (List.mem x [ 1; 2; 3 ]);
  Alcotest.check_raises "pick empty" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick g []))

(* --- Mpsc_ring -------------------------------------------------------- *)

let test_mpsc_basic () =
  let r = Mpsc_ring.create ~capacity:5 in
  Alcotest.(check int) "capacity rounds up to a power of two" 8
    (Mpsc_ring.capacity r);
  Alcotest.(check int) "minimum capacity" 2
    (Mpsc_ring.capacity (Mpsc_ring.create ~capacity:1));
  Alcotest.(check (option int)) "pop on empty" None (Mpsc_ring.pop r);
  List.iter (fun i -> Alcotest.(check bool) "push" true (Mpsc_ring.try_push r i))
    [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Mpsc_ring.length r);
  Alcotest.(check (option int)) "FIFO" (Some 1) (Mpsc_ring.pop r);
  Alcotest.(check (list int)) "drain oldest first" [ 2; 3 ] (Mpsc_ring.drain r);
  Alcotest.(check int) "empty after drain" 0 (Mpsc_ring.length r);
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Mpsc_ring.create: capacity <= 0") (fun () ->
      ignore (Mpsc_ring.create ~capacity:0))

let test_mpsc_backpressure () =
  let r = Mpsc_ring.create ~capacity:4 in
  for i = 1 to 4 do
    Alcotest.(check bool) "fills" true (Mpsc_ring.try_push r i)
  done;
  Alcotest.(check bool) "full ring refuses" false (Mpsc_ring.try_push r 5);
  Alcotest.(check (option int)) "consumer frees a slot" (Some 1)
    (Mpsc_ring.pop r);
  Alcotest.(check bool) "freed slot accepts" true (Mpsc_ring.try_push r 5);
  Alcotest.(check (list int)) "order preserved across wrap" [ 2; 3; 4; 5 ]
    (Mpsc_ring.drain r);
  Alcotest.(check int) "pushed counts successes only" 5 (Mpsc_ring.pushed r);
  Alcotest.(check int) "popped matches" 5 (Mpsc_ring.popped r)

let test_mpsc_concurrent () =
  (* 4 producer domains, 1000 items each, spinning on a ring much
     smaller than the item count while the main domain drains: every
     item must arrive exactly once, and per-producer order must hold *)
  let producers = 4 and per = 1000 in
  let r = Mpsc_ring.create ~capacity:64 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              while not (Mpsc_ring.try_push r ((p * per) + i)) do
                Domain.cpu_relax ()
              done
            done))
  in
  let seen = Array.make (producers * per) 0 in
  let last = Array.make producers (-1) in
  let total = ref 0 in
  while !total < producers * per do
    match Mpsc_ring.pop r with
    | None -> Domain.cpu_relax ()
    | Some x ->
      seen.(x) <- seen.(x) + 1;
      let p = x / per in
      Alcotest.(check bool) "per-producer FIFO" true (x mod per > last.(p));
      last.(p) <- x mod per;
      incr total
  done;
  List.iter Domain.join doms;
  Alcotest.(check bool) "exactly once" true (Array.for_all (( = ) 1) seen);
  Alcotest.(check int) "nothing left" 0 (Mpsc_ring.length r)

(* --- Json escaping ----------------------------------------------------- *)

let test_json_escape_pinned () =
  Alcotest.(check string) "two-char escapes + control escapes"
    "a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh\\u0001i"
    (Json.escape "a\"b\\c\nd\te\rf\bg\012h\001i");
  Alcotest.(check string) "valid UTF-8 copied verbatim" "caf\xc3\xa9"
    (Json.escape "caf\xc3\xa9");
  Alcotest.(check string) "stray high bytes become \\u00XX" "\\u00ff\\u00fe"
    (Json.escape "\xff\xfe");
  Alcotest.(check string) "truncated UTF-8 lead byte escaped" "\\u00c3"
    (Json.escape "\xc3");
  Alcotest.(check string) "4-byte emoji verbatim" "\xf0\x9f\x99\x82"
    (Json.escape "\xf0\x9f\x99\x82");
  Alcotest.(check string) "UTF-8-encoded surrogate is not valid UTF-8"
    "\\u00ed\\u00a0\\u0080"
    (Json.escape "\xed\xa0\x80")

let test_json_roundtrip_pinned () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trips %S" s)
        true
        (Json.parse (Json.to_string (Json.Str s)) = Json.Str s))
    [
      "";
      "plain";
      "a\"b\\c\nd\te\rf\bg\012h\001i";
      "\x00\x1f\x7f";
      "caf\xc3\xa9";
      "\xff\xfe";
      "\xc3";
      "\xc3\x28";
      "\xf0\x9f\x99\x82";
      "\xed\xa0\x80";
      "\xe2\x82";
    ]

let prop_json_string_roundtrip =
  qprop "parse (to_string (Str s)) = Str s for arbitrary bytes"
    QCheck2.Gen.(string_size (int_range 0 64) ~gen:char)
    (fun s -> Json.parse (Json.to_string (Json.Str s)) = Json.Str s)

let prop_json_escape_ascii_clean =
  qprop "escaped output never contains raw quotes, backslashes or controls"
    QCheck2.Gen.(string_size (int_range 0 64) ~gen:char)
    (fun s ->
      let e = Json.escape s in
      let n = String.length e in
      (* consume escape sequences so the backslash that *introduces* an
         escape is distinguished from escaped content *)
      let rec scan i =
        if i >= n then true
        else
          match e.[i] with
          | '"' -> false
          | c when Char.code c < 0x20 -> false
          | '\\' -> (
            if i + 1 >= n then false
            else
              match e.[i + 1] with
              | '"' | '\\' | 'n' | 't' | 'r' | 'b' | 'f' -> scan (i + 2)
              | 'u' -> i + 6 <= n && scan (i + 6)
              | _ -> false)
          | _ -> scan (i + 1)
      in
      scan 0)

(* --- Table / Gantt / Dot rendering ----------------------------------- *)

let test_table_render () =
  let s =
    Table.render
      ~aligns:[ Table.Left; Table.Right ]
      ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.index_opt s 'n' <> None);
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* right-aligned numbers line up on the last column *)
  Alcotest.(check bool) "rule present" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '-') lines)

let test_gantt_render () =
  let rows =
    [
      {
        Gantt.name = "M1";
        segments =
          [
            { Gantt.start = 0.0; finish = 50.0; label = "a" };
            { Gantt.start = 50.0; finish = 100.0; label = "b" };
          ];
      };
      { Gantt.name = "M2"; segments = [ { Gantt.start = 25.0; finish = 75.0; label = "c" } ] };
    ]
  in
  let s = Gantt.render ~width:40 rows in
  Alcotest.(check bool) "mentions M1" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "M1") lines);
  Alcotest.(check bool) "draws bars" true (String.contains s '#')

let test_gantt_empty () =
  let s = Gantt.render [ { Gantt.name = "M1"; segments = [] } ] in
  Alcotest.(check bool) "renders without segments" true (String.length s > 0)

let test_dot_render () =
  let s =
    Dot.render ~name:"g"
      [ Dot.node ~label:"A \"quoted\"" "a"; Dot.node "b" ]
      [ Dot.edge ~label:"x" "a" "b" ]
  in
  Alcotest.(check bool) "digraph header" true
    (String.sub s 0 7 = "digraph");
  Alcotest.(check bool) "escapes quotes" true
    (let rec contains i =
       i + 2 <= String.length s
       && (String.sub s i 2 = "\\\"" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "util"
    [
      ( "pqueue",
        [
          Alcotest.test_case "basic" `Quick test_pqueue_basic;
          prop_pqueue_sorts;
          prop_pqueue_interleaved;
          prop_pqueue_stable;
        ] );
      ( "iheap",
        [
          Alcotest.test_case "basic" `Quick test_iheap_basic;
          prop_iheap_sorts;
          prop_iheap_interleaved;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "union/inter" `Quick test_bitset_union_inter;
          prop_bitset_vs_set;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "topo/cycles" `Quick test_digraph_topo;
          Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
          Alcotest.test_case "closure rejects cycles" `Quick
            test_transitive_closure_cyclic_rejected;
          prop_reduction_preserves_reachability;
          prop_reduction_minimal;
          prop_topo_respects_edges;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "copy/split" `Quick test_prng_copy_split;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle/pick" `Quick test_prng_shuffle_pick;
        ] );
      ( "mpsc_ring",
        [
          Alcotest.test_case "basic" `Quick test_mpsc_basic;
          Alcotest.test_case "backpressure" `Quick test_mpsc_backpressure;
          Alcotest.test_case "concurrent producers" `Quick test_mpsc_concurrent;
        ] );
      ( "json",
        [
          Alcotest.test_case "escape pinned" `Quick test_json_escape_pinned;
          Alcotest.test_case "round-trip pinned" `Quick test_json_roundtrip_pinned;
          prop_json_string_roundtrip;
          prop_json_escape_ascii_clean;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "gantt" `Quick test_gantt_render;
          Alcotest.test_case "gantt empty" `Quick test_gantt_empty;
          Alcotest.test_case "dot" `Quick test_dot_render;
        ] );
    ]
