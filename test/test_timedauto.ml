module Rat = Rt_util.Rat
module V = Fppn.Value
module Derive = Taskgraph.Derive
module List_scheduler = Sched.List_scheduler
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace
module Ta = Timedauto.Ta
module Sim = Timedauto.Sim
module Translate = Timedauto.Translate

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal

let eq_sig a b =
  List.equal
    (fun (n1, h1) (n2, h2) -> String.equal n1 n2 && List.equal V.equal h1 h2)
    a b

(* --- Ta construction ---------------------------------------------------- *)

let simple_edge ?(atoms = []) ?(guard = Ta.true_guard) ?(resets = [])
    ?(effect = Ta.no_effect) ~src ~dst name =
  { Ta.src; atoms; data_guard = guard; resets; effect; dst; name }

let test_component_validation () =
  Alcotest.(check bool) "undeclared clock rejected" true
    (try
       ignore
         (Ta.component ~name:"c" ~initial:"l0" ~clocks:[]
            [ simple_edge ~atoms:[ Ta.Ge ("x", Ta.Static Rat.zero) ] ~src:"l0" ~dst:"l0" "e" ]);
       false
     with Invalid_argument _ -> true);
  let c =
    Ta.component ~name:"c" ~initial:"l0" ~clocks:[ "x" ]
      [ simple_edge ~resets:[ "x" ] ~src:"l0" ~dst:"l1" "a";
        simple_edge ~src:"l1" ~dst:"l0" "b" ]
  in
  Alcotest.(check int) "edges from l0" 1 (List.length (Ta.edges_from c "l0"));
  Alcotest.(check int) "edges total" 2 (List.length (Ta.edges c))

(* --- Sim: a two-component ping/pong over shared state ------------------- *)

let test_sim_clock_waits () =
  (* component fires at t=10, resets x, then fires again at t=25 *)
  let log = ref [] in
  let c =
    Ta.component ~name:"c" ~initial:"a" ~clocks:[ "x" ]
      [
        simple_edge
          ~atoms:[ Ta.Ge ("x", Ta.Static (ms 10)) ]
          ~resets:[ "x" ]
          ~effect:(fun ~now -> log := now :: !log)
          ~src:"a" ~dst:"b" "first";
        simple_edge
          ~atoms:[ Ta.Ge ("x", Ta.Static (ms 15)) ]
          ~effect:(fun ~now -> log := now :: !log)
          ~src:"b" ~dst:"done" "second";
      ]
  in
  let sim = Sim.create [ c ] in
  let fired = Sim.run sim in
  Alcotest.(check int) "two firings" 2 (List.length fired);
  Alcotest.(check (list rat)) "firing times" [ ms 10; ms 25 ] (List.rev !log);
  Alcotest.check rat "time stops at quiescence" (ms 25) (Sim.now sim);
  Alcotest.(check string) "final location" "done" (Sim.location sim "c")

let test_sim_data_guard_synchronization () =
  (* producer sets a flag at t=5; consumer can only proceed after it *)
  let flag = ref false in
  let producer =
    Ta.component ~name:"prod" ~initial:"p0" ~clocks:[ "x" ]
      [
        simple_edge
          ~atoms:[ Ta.Ge ("x", Ta.Static (ms 5)) ]
          ~effect:(fun ~now:_ -> flag := true)
          ~src:"p0" ~dst:"p1" "produce";
      ]
  in
  let consumed_at = ref Rat.zero in
  let consumer =
    Ta.component ~name:"cons" ~initial:"c0" ~clocks:[ "x" ]
      [
        simple_edge
          ~guard:(fun () -> !flag)
          ~effect:(fun ~now -> consumed_at := now)
          ~src:"c0" ~dst:"c1" "consume";
      ]
  in
  let sim = Sim.create [ producer; consumer ] in
  ignore (Sim.run sim);
  Alcotest.check rat "consumer fired when the flag appeared" (ms 5) !consumed_at

let test_sim_dynamic_bound () =
  let dur = ref (ms 7) in
  let c =
    Ta.component ~name:"c" ~initial:"a" ~clocks:[ "x" ]
      [
        simple_edge
          ~atoms:[ Ta.Ge ("x", Ta.Dynamic (fun () -> !dur)) ]
          ~src:"a" ~dst:"b" "wait-dynamic";
      ]
  in
  let sim = Sim.create [ c ] in
  let fired = Sim.run sim in
  Alcotest.(check int) "fired once" 1 (List.length fired);
  Alcotest.check rat "at the dynamic bound" (ms 7) (Sim.now sim)

let test_sim_zeno_guard () =
  let c =
    Ta.component ~name:"c" ~initial:"a" ~clocks:[]
      [ simple_edge ~src:"a" ~dst:"a" "loop" ]
  in
  let sim = Sim.create [ c ] in
  Alcotest.check_raises "zeno loop detected"
    (Invalid_argument "Sim.run: step bound exceeded (Zeno loop?)") (fun () ->
      ignore (Sim.run ~max_steps:100 sim))

let test_sim_duplicate_names () =
  let c () =
    Ta.component ~name:"same" ~initial:"a" ~clocks:[]
      [ simple_edge ~src:"a" ~dst:"b" "e" ]
  in
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Sim.create: duplicate component \"same\"") (fun () ->
      ignore (Sim.create [ c (); c () ]))

(* --- Translate: cross-validation against the engine --------------------- *)

let fig1_setup ~n_procs =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs d.Taskgraph.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "no feasible schedule"
  in
  (net, d, sched)

let test_translate_structure () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config = Engine.default_config ~frames:2 ~n_procs:2 () in
  let sys = Translate.build net d sched config in
  let comps = Translate.components sys in
  Alcotest.(check int) "one component per processor" 2 (List.length comps);
  (* per frame and job round: a start and an end edge, plus skip edges
     for server slots *)
  let total_edges =
    List.fold_left (fun acc c -> acc + List.length (Ta.edges c)) 0 comps
  in
  Alcotest.(check bool) "enough edges for 2 frames of 10 rounds" true
    (total_edges >= 2 * 10 * 2)

let test_translate_matches_engine () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let coefb = [ ms 50; ms 200 ] in
  let inputs = Fppn_apps.Fig1.input_feed ~samples:32 in
  let mk_config () =
    { (Engine.default_config ~frames:3 ~n_procs:2 ()) with
      Engine.sporadic = [ ("CoefB", coefb) ];
      inputs;
      exec = Exec_time.uniform ~seed:21 ~min_fraction:0.5 }
  in
  let rt = Engine.run net d sched (mk_config ()) in
  (* fresh config: the jittered exec model is stateful *)
  let ta = Translate.execute (Translate.build net d sched (mk_config ())) in
  Alcotest.(check bool) "signatures equal" true
    (eq_sig (Engine.signature rt) (Translate.signature ta));
  Alcotest.(check int) "same number of executed jobs"
    rt.Engine.stats.Exec_trace.executed ta.Translate.stats.Exec_trace.executed;
  Alcotest.(check int) "same skips" rt.Engine.stats.Exec_trace.skipped
    ta.Translate.stats.Exec_trace.skipped;
  Alcotest.(check int) "no misses in either" 0
    (rt.Engine.stats.Exec_trace.misses + ta.Translate.stats.Exec_trace.misses);
  (* with identical PRNG seeds the trace timings must agree exactly *)
  List.iter2
    (fun (a : Exec_trace.record) (b : Exec_trace.record) ->
      Alcotest.(check string) "same job order" a.Exec_trace.label b.Exec_trace.label;
      Alcotest.(check bool) "same start" true (Rat.equal a.Exec_trace.start b.Exec_trace.start);
      Alcotest.(check bool) "same finish" true (Rat.equal a.Exec_trace.finish b.Exec_trace.finish))
    (Engine.trace rt) ta.Translate.trace

let test_translate_matches_zero_delay () =
  let net, d, sched = fig1_setup ~n_procs:3 in
  let inputs = Fppn_apps.Fig1.input_feed ~samples:32 in
  let horizon = Rat.mul d.Taskgraph.Derive.hyperperiod (Rat.of_int 2) in
  let zd =
    Fppn.Semantics.run ~inputs net (Fppn.Semantics.invocations ~horizon net)
  in
  let config =
    { (Engine.default_config ~frames:2 ~n_procs:3 ()) with Engine.inputs = inputs }
  in
  let ta = Translate.execute (Translate.build net d sched config) in
  Alcotest.(check bool) "TA network reproduces the zero-delay history" true
    (eq_sig (Fppn.Semantics.signature zd) (Translate.signature ta))

let test_translate_with_overhead_model () =
  (* the generated TA must mirror the engine's frame-overhead delays *)
  let net, d, sched = fig1_setup ~n_procs:2 in
  let overhead =
    { Runtime.Platform.first_frame = ms 41;
      steady_frame = ms 20;
      per_access = ms 1 }
  in
  let mk_config () =
    { (Engine.default_config ~frames:2 ~n_procs:2 ()) with
      Engine.platform = Runtime.Platform.create ~overhead ~n_procs:2 ();
      exec = Exec_time.uniform ~seed:77 ~min_fraction:0.5 }
  in
  let rt = Engine.run net d sched (mk_config ()) in
  let ta = Translate.execute (Translate.build net d sched (mk_config ())) in
  List.iter2
    (fun (a : Exec_trace.record) (b : Exec_trace.record) ->
      Alcotest.(check bool) ("start of " ^ a.Exec_trace.label) true
        (Rat.equal a.Exec_trace.start b.Exec_trace.start);
      Alcotest.(check bool) ("finish of " ^ a.Exec_trace.label) true
        (Rat.equal a.Exec_trace.finish b.Exec_trace.finish))
    (Engine.trace rt) ta.Translate.trace;
  (* no job starts before the frame overhead has elapsed *)
  List.iter
    (fun (r : Exec_trace.record) ->
      if not r.Exec_trace.skipped then begin
        let bound = if r.Exec_trace.frame = 0 then ms 41 else ms 220 in
        Alcotest.(check bool) "overhead respected" true
          Rat.(r.Exec_trace.start >= bound)
      end)
    ta.Translate.trace

let test_render () =
  let net, d, sched = fig1_setup ~n_procs:2 in
  let config = Engine.default_config ~frames:1 ~n_procs:2 () in
  let sys = Translate.build net d sched config in
  let comps = Translate.components sys in
  let text = Timedauto.Render.describe_all comps in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "lists both schedulers" true
    (contains "component sched_M1" text && contains "component sched_M2" text);
  Alcotest.(check bool) "shows clock guards" true (contains "t >= " text);
  Alcotest.(check bool) "shows dynamic bounds" true (contains "<dyn>" text);
  Alcotest.(check bool) "marks data guards" true (contains "[data]" text);
  let dot = Timedauto.Render.to_dot comps in
  Alcotest.(check bool) "dot has clusters" true (contains "subgraph cluster_0" dot);
  Alcotest.(check bool) "dot closes" true (contains "}" dot)

let () =
  Alcotest.run "timedauto"
    [
      ( "ta",
        [ Alcotest.test_case "component validation" `Quick test_component_validation ] );
      ( "sim",
        [
          Alcotest.test_case "clock waits" `Quick test_sim_clock_waits;
          Alcotest.test_case "data-guard sync" `Quick test_sim_data_guard_synchronization;
          Alcotest.test_case "dynamic bound" `Quick test_sim_dynamic_bound;
          Alcotest.test_case "zeno guard" `Quick test_sim_zeno_guard;
          Alcotest.test_case "duplicate names" `Quick test_sim_duplicate_names;
        ] );
      ( "translate",
        [
          Alcotest.test_case "structure" `Quick test_translate_structure;
          Alcotest.test_case "matches engine" `Quick test_translate_matches_engine;
          Alcotest.test_case "matches zero-delay" `Quick test_translate_matches_zero_delay;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "overhead model" `Quick test_translate_with_overhead_model;
        ] );
    ]
