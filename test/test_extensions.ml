(* Tests for the extension layers: FIFO buffer analysis, the global-EDF
   nondeterminism baseline, processor dimensioning, trace export and
   per-process statistics. *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Buffer_analysis = Fppn.Buffer_analysis
module Derive = Taskgraph.Derive
module Graph = Taskgraph.Graph
module Dimension = Sched.Dimension
module List_scheduler = Sched.List_scheduler
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace
module Global_edf = Runtime.Global_edf
module Export = Runtime.Export

let ms = Rat.of_int

(* --- buffer analysis ---------------------------------------------------- *)

(* writer at 100 ms vs reader at 200 ms who only consumes one sample per
   job: FIFO drifts by +1 per hyperperiod *)
let unbalanced_net () =
  let b = Network.Builder.create "unbalanced" in
  Network.Builder.add_process b
    (Process.make ~name:"W"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native
          (fun ctx -> ctx.Process.write "q" (V.Int ctx.Process.job_index))));
  Network.Builder.add_process b
    (Process.make ~name:"R"
       ~event:(Event.periodic ~period:(ms 200) ~deadline:(ms 200) ())
       (Process.Native (fun ctx -> ignore (ctx.Process.read "q"))));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Fifo ~writer:"W" ~reader:"R" "q";
  Network.Builder.add_priority b "W" "R";
  Network.Builder.finish_exn b

let test_buffer_unbounded_detection () =
  let report = Buffer_analysis.analyse ~hyperperiods:5 (unbalanced_net ()) in
  match Buffer_analysis.unbounded_channels report with
  | [ r ] ->
    Alcotest.(check string) "channel q flagged" "q" r.Buffer_analysis.channel;
    Alcotest.(check (float 0.01)) "drift +1 per hyperperiod" 1.0
      r.Buffer_analysis.drift;
    Alcotest.(check bool) "peak grows with the horizon" true
      (r.Buffer_analysis.max_occupancy >= 5)
  | l -> Alcotest.failf "expected 1 unbounded channel, got %d" (List.length l)

let test_buffer_balanced_fig1 () =
  let report =
    Buffer_analysis.analyse ~hyperperiods:6
      ~sporadic:[ ("CoefB", [ ms 50 ]) ]
      ~inputs:(Fppn_apps.Fig1.input_feed ~samples:64)
      (Fppn_apps.Fig1.network ())
  in
  Alcotest.(check (list string)) "no unbounded channels in fig1" []
    (List.map
       (fun r -> r.Buffer_analysis.channel)
       (Buffer_analysis.unbounded_channels report));
  (* the InputA->FilterA FIFO holds at most one element *)
  Alcotest.(check (option int)) "inA_to_fA bound" (Some 1)
    (Buffer_analysis.bound_of report Fppn_apps.Fig1.ch_input_to_filter_a);
  (* all seven channels are reported *)
  Alcotest.(check int) "7 channels" 7 (List.length report.Buffer_analysis.channels)

let test_buffer_fft_single_slot () =
  let p = Fppn_apps.Fft.default_params in
  let report = Buffer_analysis.analyse ~hyperperiods:3 (Fppn_apps.Fft.network p) in
  (* every stage FIFO carries exactly one token per frame *)
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Buffer_analysis.channel ^ " single-token bound")
        1 r.Buffer_analysis.max_occupancy)
    report.Buffer_analysis.channels;
  Alcotest.(check int) "fft channel count (2 per butterfly + n outputs)"
    (8 + (12 * 2))
    (List.length report.Buffer_analysis.channels)

let test_buffer_default_sporadic_is_max_rate () =
  (* with the default synthetic traces, CoefB writes 2 per 200 ms server
     window... i.e. at its own min period: 2 writes per 700 ms *)
  let report = Buffer_analysis.analyse ~hyperperiods:7 (Fppn_apps.Fig1.network ()) in
  let coef =
    List.find
      (fun r -> r.Buffer_analysis.channel = Fppn_apps.Fig1.ch_coef_to_filter_b)
      report.Buffer_analysis.channels
  in
  Alcotest.(check bool) "coef blackboard written" true
    (coef.Buffer_analysis.writes_per_hyperperiod > 0.0);
  Alcotest.(check int) "blackboard occupancy capped at 1" 1
    coef.Buffer_analysis.max_occupancy

(* --- global EDF nondeterminism ------------------------------------------ *)

let eq_sig a b =
  List.equal
    (fun (n1, h1) (n2, h2) -> String.equal n1 n2 && List.equal V.equal h1 h2)
    a b

let test_global_edf_runs () =
  let net = Fppn_apps.Fig1.network () in
  let cfg =
    Global_edf.default_config ~wcet:Fppn_apps.Fig1.wcet ~horizon:(ms 600)
      ~n_procs:2
  in
  let r = Global_edf.run net cfg in
  Alcotest.(check bool) "jobs executed" true (List.length r.Global_edf.records > 10);
  (* plenty of capacity on 2 procs: all deadlines met *)
  Alcotest.(check int) "no misses on 2 procs" 0 r.Global_edf.misses

let test_global_edf_is_not_deterministic () =
  (* the motivating experiment: under multiprocessor EDF the channel
     histories depend on execution times; under the FPPN runtime they do
     not.  Fig. 1's FilterA/NormA feedback is timing-sensitive: if
     NormA[k] completes before FilterA[k+1] starts, the gain applies one
     period earlier. *)
  let net = Fppn_apps.Fig1.network () in
  let run seed =
    let cfg =
      { (Global_edf.default_config ~wcet:Fppn_apps.Fig1.wcet ~horizon:(ms 1000)
           ~n_procs:2)
        with
        Global_edf.exec = Exec_time.uniform ~seed ~min_fraction:0.05;
        inputs = Fppn_apps.Fig1.input_feed ~samples:64 }
    in
    Global_edf.signature (Global_edf.run net cfg)
  in
  let signatures = List.map run [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let all_equal =
    match signatures with
    | first :: rest -> List.for_all (eq_sig first) rest
    | [] -> true
  in
  Alcotest.(check bool) "global EDF histories vary across jitter seeds" false
    all_equal

let test_fppn_runtime_is_deterministic_same_setup () =
  (* the same workload through the FPPN flow: identical histories *)
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let run seed =
    let cfg =
      { (Engine.default_config ~frames:5 ~n_procs:2 ()) with
        Engine.inputs = Fppn_apps.Fig1.input_feed ~samples:64;
        exec = Exec_time.uniform ~seed ~min_fraction:0.05 }
    in
    Engine.signature (Engine.run net d sched cfg)
  in
  let signatures = List.map run [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  match signatures with
  | first :: rest ->
    Alcotest.(check bool) "FPPN histories identical across jitter seeds" true
      (List.for_all (eq_sig first) rest)
  | [] -> ()

let test_global_edf_migrations_counted () =
  (* overload one processor so EDF migrates work *)
  let net = Fppn_apps.Fft.network Fppn_apps.Fft.default_params in
  let cfg =
    Global_edf.default_config
      ~wcet:(Fppn_apps.Fft.wcet_map Fppn_apps.Fft.default_params)
      ~horizon:(ms 400) ~n_procs:2
  in
  let r = Global_edf.run net cfg in
  Alcotest.(check bool) "records exist" true (r.Global_edf.records <> [])

(* --- processor dimensioning ----------------------------------------------- *)

let test_dimension_fft () =
  let p = Fppn_apps.Fft.default_params in
  let net = Fppn_apps.Fft.network_with_overhead_job p in
  let d =
    Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map_with_overhead p ~overhead:(ms 41)) net
  in
  let v = Dimension.min_processors d.Derive.graph in
  Alcotest.(check int) "lower bound 2 (load ~1.2)" 2 v.Dimension.lower_bound;
  match v.Dimension.found with
  | Some (m, _) -> Alcotest.(check int) "2 processors suffice" 2 m
  | None -> Alcotest.fail "expected a feasible processor count"

let test_dimension_infeasible_job () =
  let job =
    {
      Taskgraph.Job.id = 0;
      proc = 0;
      proc_name = "X";
      k = 1;
      arrival = ms 0;
      deadline = ms 50;
      wcet = ms 80;
      is_server = false;
    }
  in
  let g = Graph.make [| job |] (Rt_util.Digraph.create 1) in
  let v = Dimension.min_processors g in
  Alcotest.(check int) "job-infeasible lower bound" max_int v.Dimension.lower_bound;
  Alcotest.(check bool) "nothing found" true (v.Dimension.found = None)

let test_dimension_fms () =
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.reduced ()) in
  let v = Dimension.min_processors d.Derive.graph in
  Alcotest.(check int) "FMS needs one processor" 1 v.Dimension.lower_bound;
  match v.Dimension.found with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "expected M=1 feasible"

(* --- end-to-end latency ------------------------------------------------- *)

let fig1_run ?(frames = 3) ?(seed = 5) () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let cfg =
    { (Engine.default_config ~frames ~n_procs:2 ()) with
      Engine.sporadic = [ ("CoefB", [ ms 50 ]) ];
      exec = Exec_time.uniform ~seed ~min_fraction:0.3 }
  in
  (d, Engine.run net d sched cfg)

let test_latency_fig1 () =
  let d, r = fig1_run () in
  let l =
    Runtime.Latency.analyse d.Derive.graph ~source:"InputA" ~sink:"OutputA"
      (Engine.trace r)
  in
  (* one OutputA job per frame, each fed by the frame's InputA job *)
  Alcotest.(check int) "one sample per frame" 3
    (List.length l.Runtime.Latency.samples);
  Alcotest.(check bool) "reaction positive" true
    (Rat.sign l.Runtime.Latency.max_reaction > 0);
  (* reaction <= age always *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "reaction <= age" true
        Rat.(s.Runtime.Latency.reaction <= s.Runtime.Latency.age))
    l.Runtime.Latency.samples;
  (* within a frame the whole chain fits in the 200 ms hyperperiod *)
  Alcotest.(check bool) "bounded by the frame" true
    Rat.(l.Runtime.Latency.max_reaction <= ms 200)

let test_latency_requires_a_path () =
  let d, r = fig1_run () in
  (* OutputA and OutputB are unrelated: no end-to-end constraint *)
  Alcotest.(check bool) "no path -> Invalid_argument" true
    (try
       ignore
         (Runtime.Latency.analyse d.Derive.graph ~source:"OutputA"
            ~sink:"OutputB" (Engine.trace r));
       false
     with Invalid_argument _ -> true)

let test_latency_deterministic_upper_bound () =
  (* under WCET execution, the reaction time equals the static bound
     finish(sink) - arrival(source); jittered runs can only be faster *)
  let d, wcet_run = fig1_run ~seed:0 () in
  ignore wcet_run;
  let net = Fppn_apps.Fig1.network () in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let run exec =
    let cfg =
      { (Engine.default_config ~frames:2 ~n_procs:2 ()) with Engine.exec } in
    let r = Engine.run net d sched cfg in
    (Runtime.Latency.analyse d.Derive.graph ~source:"InputA" ~sink:"OutputA"
       (Engine.trace r))
      .Runtime.Latency.max_reaction
  in
  let bound = run Exec_time.constant in
  List.iter
    (fun seed ->
      let jittered = run (Exec_time.uniform ~seed ~min_fraction:0.2) in
      Alcotest.(check bool)
        (Printf.sprintf "jittered latency (seed %d) within the WCET bound" seed)
        true
        Rat.(jittered <= bound))
    [ 1; 2; 3 ]

let test_latency_fms_chain () =
  let net = Fppn_apps.Fms.reduced () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:1 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let r = Engine.run net d sched (Engine.default_config ~frames:1 ~n_procs:1 ()) in
  let l =
    Runtime.Latency.analyse d.Derive.graph ~source:"SensorInput"
      ~sink:"Performance" (Engine.trace r)
  in
  Alcotest.(check int) "10 Performance jobs in the 10 s frame" 10
    (List.length l.Runtime.Latency.samples);
  Alcotest.(check bool) "sensor-to-performance reaction bounded" true
    (Rat.sign l.Runtime.Latency.max_reaction > 0)

(* --- schedule persistence -------------------------------------------------- *)

let test_schedule_roundtrip () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let g = d.Derive.graph in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 g) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let text = Sched.Schedule_io.to_string ~graph:g sched in
  match Sched.Schedule_io.of_string text with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok sched' ->
    Alcotest.(check int) "procs" (Sched.Static_schedule.n_procs sched)
      (Sched.Static_schedule.n_procs sched');
    Alcotest.(check bool) "matches the graph" true (Sched.Schedule_io.matches g sched');
    for i = 0 to Sched.Static_schedule.n_jobs sched - 1 do
      Alcotest.(check int) "proc" (Sched.Static_schedule.proc sched i)
        (Sched.Static_schedule.proc sched' i);
      Alcotest.(check bool) "start" true
        (Rat.equal
           (Sched.Static_schedule.start sched i)
           (Sched.Static_schedule.start sched' i))
    done;
    (* a loaded schedule drives the engine identically *)
    let cfg = Engine.default_config ~frames:2 ~n_procs:2 () in
    let r1 = Engine.run net d sched cfg
    and r2 = Engine.run net d sched' cfg in
    Alcotest.(check bool) "same histories through a reloaded schedule" true
      (eq_sig (Engine.signature r1) (Engine.signature r2))

let test_schedule_parse_errors () =
  let expect_error text =
    match Sched.Schedule_io.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error on %S" text
  in
  expect_error "not a schedule";
  expect_error "fppn-schedule v1
procs 2
jobs 2
0 0 0";
  expect_error "fppn-schedule v1
procs 2
jobs 1
0 9 0";
  expect_error "fppn-schedule v1
procs x
jobs 1
0 0 0";
  expect_error "fppn-schedule v1
procs 1
jobs 2
0 0 0
0 0 5"

let qprop name ?(count = 40) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let prop_schedule_io_roundtrip_random =
  qprop "schedule save/load round-trips on random workloads"
    QCheck2.Gen.(
      triple (int_range 0 20_000) (int_range 2 7) (int_range 1 3))
    (fun (seed, n_periodic, n_procs) ->
      let params =
        { Fppn_apps.Randgen.default_params with seed; n_periodic; n_sporadic = 1 }
      in
      let net = Fppn_apps.Randgen.network params in
      let wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 12)
          (Derive.const_wcet Rat.one) net
      in
      let d = Derive.derive_exn ~wcet net in
      let s =
        Sched.List_scheduler.schedule_with ~heuristic:Sched.Priority.Alap_edf
          ~n_procs d.Derive.graph
      in
      match Sched.Schedule_io.of_string (Sched.Schedule_io.to_string ~graph:d.Derive.graph s) with
      | Error _ -> false
      | Ok s' ->
        Sched.Static_schedule.n_procs s = Sched.Static_schedule.n_procs s'
        && List.for_all
             (fun i ->
               Sched.Static_schedule.proc s i = Sched.Static_schedule.proc s' i
               && Rat.equal (Sched.Static_schedule.start s i)
                    (Sched.Static_schedule.start s' i))
             (List.init (Sched.Static_schedule.n_jobs s) Fun.id))

let test_schedule_file_roundtrip () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let path = Filename.temp_file "fppn-sched" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sched.Schedule_io.save ~graph:d.Derive.graph path sched;
      match Sched.Schedule_io.load path with
      | Ok s ->
        Alcotest.(check int) "jobs" (Sched.Static_schedule.n_jobs sched)
          (Sched.Static_schedule.n_jobs s)
      | Error e -> Alcotest.failf "load failed: %s" e)

(* --- end-to-end verification checker ----------------------------------------- *)

let test_checker_passes_on_good_apps () =
  let config =
    { Fppn_verify.Checker.default_config with
      Fppn_verify.Checker.processor_counts = [ 1; 2 ];
      jitter_seeds = [ 1 ];
      frames = 2 }
  in
  List.iter
    (fun (name, net, wcet) ->
      let report = Fppn_verify.Checker.run ~config ~wcet net in
      if not report.Fppn_verify.Checker.passed then
        Alcotest.failf "%s failed:\n%s" name
          (Format.asprintf "%a" Fppn_verify.Checker.pp report))
    [
      ("fig1", Fppn_apps.Fig1.network (), Fppn_apps.Fig1.wcet);
      ("automotive", Fppn_apps.Automotive.network (), Fppn_apps.Automotive.wcet);
    ]

let test_checker_flags_unbounded_buffers () =
  let report =
    Fppn_verify.Checker.run
      ~config:
        { Fppn_verify.Checker.default_config with
          Fppn_verify.Checker.processor_counts = [ 1 ];
          jitter_seeds = [ 1 ];
          frames = 2 }
      ~wcet:(Derive.const_wcet (ms 5))
      (unbalanced_net ())
  in
  Alcotest.(check bool) "report fails" false report.Fppn_verify.Checker.passed;
  Alcotest.(check bool) "buffer check is the failure" true
    (List.exists
       (fun (c : Fppn_verify.Checker.check) ->
         (not c.Fppn_verify.Checker.passed)
         && c.Fppn_verify.Checker.name = "FIFO buffer bounds")
       report.Fppn_verify.Checker.checks)

let test_broken_fp_dag_rejected_with_diagnostic () =
  (* Def. 2.1: every channel pair must be FP-related.  A network whose
     FP DAG does not cover a channel cannot even be constructed, and the
     diagnostic must name the channel and both endpoints so the user can
     add the missing priority edge. *)
  let b = Network.Builder.create "broken-fp" in
  let periodic name =
    Process.make ~name
      ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
      (Process.Native (fun _ -> ()))
  in
  Network.Builder.add_process b (periodic "W");
  Network.Builder.add_process b (periodic "R");
  Network.Builder.add_process b (periodic "X");
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"W"
    ~reader:"R" "cfg";
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"R"
    ~reader:"X" "out";
  (* only R -> X is priority-covered; W -> R is left unrelated *)
  Network.Builder.add_priority b "R" "X";
  (match Network.Builder.finish b with
  | Ok _ -> Alcotest.fail "broken FP DAG was accepted"
  | Error errs ->
    Alcotest.(check int) "exactly one error" 1 (List.length errs);
    (match errs with
    | [ Network.Missing_priority { channel; writer; reader } ] ->
      Alcotest.(check string) "names the channel" "cfg" channel;
      Alcotest.(check string) "names the writer" "W" writer;
      Alcotest.(check string) "names the reader" "R" reader
    | _ -> Alcotest.fail "expected Missing_priority");
    let msg = Format.asprintf "%a" Network.pp_error (List.hd errs) in
    let contains needle =
      let nl = String.length needle and ml = String.length msg in
      let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
      at 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic mentions %s" needle)
          true (contains needle))
      [ "\"cfg\""; "\"W\""; "\"R\"" ]);
  (* adding the missing edge fixes it *)
  Network.Builder.add_priority b "W" "R";
  match Network.Builder.finish b with
  | Ok _ -> ()
  | Error errs ->
    Alcotest.failf "still rejected: %s"
      (String.concat "; "
         (List.map (Format.asprintf "%a" Network.pp_error) errs))

let test_checker_reports_subclass_errors () =
  (* sporadic process without a user *)
  let b = Network.Builder.create "nouser" in
  Network.Builder.add_process b
    (Process.make ~name:"P"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun _ -> ())));
  Network.Builder.add_process b
    (Process.make ~name:"S"
       ~event:(Event.sporadic ~min_period:(ms 100) ~deadline:(ms 200) ())
       (Process.Native (fun _ -> ())));
  let net = Network.Builder.finish_exn b in
  let report =
    Fppn_verify.Checker.run ~wcet:(Derive.const_wcet (ms 1)) net
  in
  Alcotest.(check bool) "fails" false report.Fppn_verify.Checker.passed;
  match report.Fppn_verify.Checker.checks with
  | [ c ] ->
    Alcotest.(check bool) "derivation check failed" false
      c.Fppn_verify.Checker.passed
  | _ -> Alcotest.fail "expected a single derivation check"

(* --- export and per-process stats ------------------------------------------ *)

let sample_trace () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "infeasible"
  in
  let cfg =
    { (Engine.default_config ~frames:2 ~n_procs:2 ()) with
      Engine.sporadic = [ ("CoefB", [ ms 50 ]) ] }
  in
  Engine.trace (Engine.run net d sched cfg)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_export_json () =
  let trace = sample_trace () in
  let json = Export.to_json trace in
  Alcotest.(check bool) "is an array" true (json.[0] = '[');
  Alcotest.(check bool) "mentions a job label" true
    (contains ~needle:"\"InputA[1]\"" json);
  Alcotest.(check bool) "skipped flag present" true
    (contains ~needle:"\"skipped\":true" json);
  (* one object per record *)
  let objects =
    List.length
      (String.split_on_char '{' json)
    - 1
  in
  Alcotest.(check int) "record count" (List.length trace) objects

let test_export_csv () =
  let trace = sample_trace () in
  let csv = Export.to_csv trace in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one line per record"
    (List.length trace + 1)
    (List.length lines);
  Alcotest.(check string) "header" Export.csv_header (List.hd lines);
  (* every data line has the right number of commas *)
  let cols = List.length (String.split_on_char ',' Export.csv_header) in
  List.iter
    (fun l ->
      Alcotest.(check int) "column count" cols
        (List.length (String.split_on_char ',' l)))
    (List.tl lines)

let test_utilization () =
  let trace = sample_trace () in
  (* fig1: 2 frames of 200 ms with constant WCETs *)
  let util = Exec_trace.utilization ~n_procs:2 ~span:(ms 400) trace in
  Alcotest.(check int) "one entry per processor" 2 (Array.length util);
  (* every executed job runs for its 25 ms WCET *)
  let executed =
    List.length (List.filter (fun (r : Exec_trace.record) -> not r.Exec_trace.skipped) trace)
  in
  let total = Array.fold_left ( +. ) 0.0 util in
  Alcotest.(check (float 1e-6)) "total utilization"
    (float_of_int executed *. 25.0 /. 400.0)
    total;
  Array.iter
    (fun u -> Alcotest.(check bool) "each in [0,1]" true (u >= 0.0 && u <= 1.0))
    util

let test_checker_latency_specs () =
  let base =
    { Fppn_verify.Checker.default_config with
      Fppn_verify.Checker.processor_counts = [ 2 ];
      jitter_seeds = [];
      frames = 2;
      inputs = Fppn_apps.Fig1.input_feed ~samples:32 }
  in
  let run specs =
    Fppn_verify.Checker.run
      ~config:{ base with Fppn_verify.Checker.latency_specs = specs }
      ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ())
  in
  (* generous bound passes *)
  let ok =
    run
      [ { Fppn_verify.Checker.l_source = "InputA"; l_sink = "OutputA";
          max_reaction = ms 200 } ]
  in
  Alcotest.(check bool) "generous bound passes" true ok.Fppn_verify.Checker.passed;
  (* impossible bound fails *)
  let bad =
    run
      [ { Fppn_verify.Checker.l_source = "InputA"; l_sink = "OutputA";
          max_reaction = ms 10 } ]
  in
  Alcotest.(check bool) "tight bound fails" false bad.Fppn_verify.Checker.passed;
  (* unrelated pair reported as failure, not crash *)
  let unrelated =
    run
      [ { Fppn_verify.Checker.l_source = "OutputA"; l_sink = "OutputB";
          max_reaction = ms 200 } ]
  in
  Alcotest.(check bool) "unrelated pair fails gracefully" false
    unrelated.Fppn_verify.Checker.passed

let test_taskgraph_json () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let json = Graph.to_json d.Derive.graph in
  let count needle =
    let nl = String.length needle and hl = String.length json in
    let rec scan i acc =
      if i + nl > hl then acc
      else if String.sub json i nl = needle then scan (i + 1) (acc + 1)
      else scan (i + 1) acc
    in
    scan 0 0
  in
  Alcotest.(check int) "10 job objects" 10 (count "\"id\":");
  Alcotest.(check int) "10 edges" 10 (count "    [");
  Alcotest.(check bool) "server flag present" true (count "\"server\":true" = 2)

let test_schedule_load_missing_file () =
  match Sched.Schedule_io.load "/nonexistent/path.sched" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

let test_buffer_analysis_validation () =
  Alcotest.(check bool) "zero hyperperiods rejected" true
    (try
       ignore (Buffer_analysis.analyse ~hyperperiods:0 (unbalanced_net ()));
       false
     with Invalid_argument _ -> true)

let test_by_process_stats () =
  let trace = sample_trace () in
  let stats = Exec_trace.by_process trace in
  let find name = List.find (fun s -> s.Exec_trace.process = name) stats in
  let coef = find "CoefB" in
  Alcotest.(check int) "CoefB executed once (one real event)" 1
    coef.Exec_trace.p_executed;
  Alcotest.(check int) "CoefB skipped 3 slots over 2 frames" 3
    coef.Exec_trace.p_skipped;
  let filter_a = find "FilterA" in
  Alcotest.(check int) "FilterA 2 jobs per frame x 2 frames" 4
    filter_a.Exec_trace.p_executed;
  Alcotest.(check bool) "mean <= max" true
    (filter_a.Exec_trace.p_mean_response_ms
    <= Rat.to_float filter_a.Exec_trace.p_max_response +. 1e-9);
  Alcotest.(check int) "no misses" 0
    (List.fold_left (fun acc s -> acc + s.Exec_trace.p_misses) 0 stats)

let () =
  Alcotest.run "extensions"
    [
      ( "buffer-analysis",
        [
          Alcotest.test_case "unbounded detection" `Quick test_buffer_unbounded_detection;
          Alcotest.test_case "fig1 balanced" `Quick test_buffer_balanced_fig1;
          Alcotest.test_case "fft single-slot" `Quick test_buffer_fft_single_slot;
          Alcotest.test_case "default sporadic traces" `Quick
            test_buffer_default_sporadic_is_max_rate;
        ] );
      ( "global-edf",
        [
          Alcotest.test_case "runs" `Quick test_global_edf_runs;
          Alcotest.test_case "nondeterministic across jitter" `Quick
            test_global_edf_is_not_deterministic;
          Alcotest.test_case "fppn deterministic in the same setup" `Quick
            test_fppn_runtime_is_deterministic_same_setup;
          Alcotest.test_case "fft workload" `Quick test_global_edf_migrations_counted;
        ] );
      ( "dimension",
        [
          Alcotest.test_case "fft needs 2" `Quick test_dimension_fft;
          Alcotest.test_case "infeasible job" `Quick test_dimension_infeasible_job;
          Alcotest.test_case "fms needs 1" `Quick test_dimension_fms;
        ] );
      ( "latency",
        [
          Alcotest.test_case "fig1 InputA->OutputA" `Quick test_latency_fig1;
          Alcotest.test_case "requires a path" `Quick test_latency_requires_a_path;
          Alcotest.test_case "WCET bound dominates jitter" `Quick
            test_latency_deterministic_upper_bound;
          Alcotest.test_case "fms sensor->performance" `Quick test_latency_fms_chain;
        ] );
      ( "schedule-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_schedule_parse_errors;
          Alcotest.test_case "file roundtrip" `Quick test_schedule_file_roundtrip;
          prop_schedule_io_roundtrip_random;
        ] );
      ( "checker",
        [
          Alcotest.test_case "passes on good apps" `Slow test_checker_passes_on_good_apps;
          Alcotest.test_case "flags unbounded buffers" `Quick
            test_checker_flags_unbounded_buffers;
          Alcotest.test_case "reports subclass errors" `Quick
            test_checker_reports_subclass_errors;
          Alcotest.test_case "broken FP DAG rejected" `Quick
            test_broken_fp_dag_rejected_with_diagnostic;
          Alcotest.test_case "end-to-end latency specs" `Quick
            test_checker_latency_specs;
        ] );
      ( "export",
        [
          Alcotest.test_case "json" `Quick test_export_json;
          Alcotest.test_case "csv" `Quick test_export_csv;
          Alcotest.test_case "per-process stats" `Quick test_by_process_stats;
          Alcotest.test_case "utilization" `Quick test_utilization;
          Alcotest.test_case "taskgraph json" `Quick test_taskgraph_json;
          Alcotest.test_case "missing schedule file" `Quick
            test_schedule_load_missing_file;
          Alcotest.test_case "buffer validation" `Quick
            test_buffer_analysis_validation;
        ] );
    ]
