module Pool = Rt_util.Pool

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 100 (fun i -> i) in
      let out = Pool.parallel_map pool (fun i -> i * i) input in
      Alcotest.(check (array int))
        "squares in input order"
        (Array.init 100 (fun i -> i * i))
        out)

let test_jobs_one_is_sequential () =
  (* jobs:1 must call the body left to right on the caller's domain *)
  let order = ref [] in
  Pool.with_pool ~jobs:1 (fun pool ->
      let out =
        Pool.parallel_map pool
          (fun i ->
            order := i :: !order;
            i + 1)
          (Array.init 10 (fun i -> i))
      in
      Alcotest.(check (list int))
        "visited left to right"
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.rev !order);
      Alcotest.(check (array int))
        "results" (Array.init 10 (fun i -> i + 1)) out)

let test_map_matches_sequential () =
  let input = Array.init 500 (fun i -> i) in
  let f i = (i * 7919) mod 104729 in
  let expect = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d equals sequential" jobs)
            expect
            (Pool.parallel_map pool f input)))
    [ 1; 2; 4; 8 ]

let test_map_list () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list string))
        "list mapped in order"
        [ "0"; "1"; "2"; "3"; "4" ]
        (Pool.map_list pool string_of_int [ 0; 1; 2; 3; 4 ]))

let test_parallel_for () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let hits = Array.make 257 0 in
      Pool.parallel_for pool 257 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int))
        "every index visited exactly once" (Array.make 257 1) hits)

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int))
        "empty input" [||]
        (Pool.parallel_map pool (fun i -> i) [||]);
      Alcotest.(check (array int))
        "single element" [| 42 |]
        (Pool.parallel_map pool (fun i -> i * 2) [| 21 |]))

exception Boom of int

let test_exception_propagates_smallest_index () =
  (* index 2 sits in the first chunk, which is always fetched before any
     error can abort the run, so the winning exception is deterministic *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          match
            Pool.parallel_map pool
              (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
              (Array.init 50 (fun i -> i))
          with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom i ->
            Alcotest.(check int) "smallest failing index wins" 2 i))
    [ 1; 4 ]

let test_nested_maps () =
  (* a task body may itself use the pool: waiters help drain the queue,
     so this must not deadlock even with a single worker *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let out =
            Pool.map_list ~chunk:1 pool
              (fun i ->
                Array.to_list
                  (Pool.parallel_map pool (fun j -> (10 * i) + j)
                     (Array.init 4 (fun j -> j))))
              [ 0; 1; 2 ]
          in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "nested map, jobs=%d" jobs)
            [ [ 0; 1; 2; 3 ]; [ 10; 11; 12; 13 ]; [ 20; 21; 22; 23 ] ]
            out))
    [ 1; 2; 4 ]

let test_pool_reuse_and_shutdown () =
  let pool = Pool.create ~jobs:2 in
  Alcotest.(check int) "jobs clamp" 2 (Pool.jobs pool);
  for _ = 1 to 5 do
    ignore (Pool.parallel_map pool succ (Array.init 20 (fun i -> i)))
  done;
  Pool.shutdown pool;
  (* idempotent *)
  Pool.shutdown pool;
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let test_chunking () =
  Pool.with_pool ~jobs:2 (fun pool ->
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "chunk=%d" chunk)
            (Array.init 33 (fun i -> i + 100))
            (Pool.parallel_map ~chunk pool (fun i -> i + 100)
               (Array.init 33 (fun i -> i))))
        [ 1; 2; 7; 33; 100 ])

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "jobs=1 is sequential" `Quick test_jobs_one_is_sequential;
          Alcotest.test_case "parallel equals sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "smallest-index exception" `Quick
            test_exception_propagates_smallest_index;
          Alcotest.test_case "nested maps" `Quick test_nested_maps;
          Alcotest.test_case "reuse and shutdown" `Quick test_pool_reuse_and_shutdown;
          Alcotest.test_case "chunk sizes" `Quick test_chunking;
        ] );
    ]
