(* End-to-end pipeline tests: network -> task graph -> static schedule ->
   online execution, with the determinism checks of Prop. 2.1 / 4.1 run
   across processor counts, execution-time jitter and random sporadic
   event traces. *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Network = Fppn.Network
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module Graph = Taskgraph.Graph
module Analysis = Taskgraph.Analysis
module List_scheduler = Sched.List_scheduler
module Static_schedule = Sched.Static_schedule
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace

let ms = Rat.of_int

let eq_sig a b =
  List.equal
    (fun (n1, h1) (n2, h2) -> String.equal n1 n2 && List.equal V.equal h1 h2)
    a b

let qprop name ?(count = 25) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* Keep only sporadic events that fall inside windows handled within the
   simulated horizon, so the zero-delay reference sees the same event
   set as the runtime (horizon-edge events are reported as unhandled by
   the engine and excluded here). *)
let handled_traces net d ~frames traces =
  let _, unhandled = Engine.sporadic_assignment net d ~frames traces in
  List.map
    (fun (name, stamps) ->
      ( name,
        List.filter
          (fun s -> not (List.exists (fun (n, u) -> n = name && Rat.equal u s) unhandled))
          stamps ))
    traces

let pipeline ?(frames = 2) ?(n_procs = 2) ?(seed = 1) params =
  let net = Fppn_apps.Randgen.network params in
  let wcet =
    Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 25) (Derive.const_wcet Rat.one) net
  in
  let d = Derive.derive_exn ~wcet net in
  let g = d.Derive.graph in
  match snd (List_scheduler.auto ~n_procs g) with
  | None -> None
  | Some a ->
    let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int frames) in
    let raw_traces =
      Fppn_apps.Randgen.random_traces ~seed ~horizon ~density:0.5 net
    in
    let traces = handled_traces net d ~frames raw_traces in
    let config =
      { (Engine.default_config ~frames ~n_procs ()) with
        Engine.sporadic = traces;
        exec = Exec_time.uniform ~seed ~min_fraction:0.25 }
    in
    let rt = Engine.run net d a.List_scheduler.schedule config in
    let zd =
      Semantics.run net (Semantics.invocations ~sporadic:traces ~horizon net)
    in
    Some (net, d, a, rt, zd)

let random_params =
  QCheck2.Gen.(
    let* seed = int_range 0 50_000 in
    let* n_periodic = int_range 2 8 in
    let* n_sporadic = int_range 0 3 in
    let* channel_density = float_range 0.2 0.8 in
    return
      { Fppn_apps.Randgen.default_params with
        seed; n_periodic; n_sporadic; channel_density })

let prop_runtime_deterministic_vs_zero_delay =
  qprop "random pipelines: runtime history = zero-delay history"
    QCheck2.Gen.(pair random_params (int_range 1 4))
    (fun (params, n_procs) ->
      match pipeline ~n_procs params with
      | None -> true (* infeasible workload: nothing to compare *)
      | Some (_, _, _, rt, zd) ->
        eq_sig (Semantics.signature zd) (Engine.signature rt))

let prop_no_misses_on_feasible_schedules =
  qprop "feasible static schedules never miss deadlines online (Prop 4.1)"
    QCheck2.Gen.(pair random_params (int_range 1 3))
    (fun (params, n_procs) ->
      match pipeline ~n_procs params with
      | None -> true
      | Some (_, _, _, rt, _) -> rt.Engine.stats.Exec_trace.misses = 0)

let prop_traces_comply_with_real_time_semantics =
  qprop "engine traces satisfy WCET/invocation/precedence/mutex (Sec. II)"
    QCheck2.Gen.(pair random_params (int_range 1 4))
    (fun (params, n_procs) ->
      match pipeline ~n_procs params with
      | None -> true
      | Some (_, d, _, rt, _) ->
        Exec_trace.check d.Derive.graph (Engine.trace rt) = [])

let prop_processor_count_invariance =
  qprop "output histories identical across processor counts" ~count:15
    random_params
    (fun params ->
      let run n_procs =
        Option.map (fun (_, _, _, rt, _) -> Engine.signature rt)
          (pipeline ~n_procs params)
      in
      match (run 1, run 2, run 4) with
      | Some s1, Some s2, Some s4 -> eq_sig s1 s2 && eq_sig s2 s4
      | _ -> true (* some M infeasible; skip *))

let prop_latency_wcet_bound_random =
  qprop "WCET end-to-end latency bounds jittered runs (random chains)" ~count:10
    random_params
    (fun params ->
      let net = Fppn_apps.Randgen.network params in
      let wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 25) (Derive.const_wcet Rat.one) net
      in
      let d = Derive.derive_exn ~wcet net in
      let g = d.Derive.graph in
      match snd (List_scheduler.auto ~n_procs:2 g) with
      | None -> true
      | Some a ->
        (* find a connected (source, sink) pair of distinct processes *)
        let names =
          Array.to_list (Array.map Fppn.Process.name (Network.processes net))
        in
        let connected =
          List.concat_map
            (fun src ->
              List.filter_map
                (fun snk ->
                  if src = snk then None
                  else
                    match
                      Runtime.Latency.analyse g ~source:src ~sink:snk []
                    with
                    | _ -> Some (src, snk)
                    | exception Invalid_argument _ -> None)
                names)
            names
        in
        (match connected with
        | [] -> true
        | (src, snk) :: _ ->
          let run exec =
            let cfg =
              { (Engine.default_config ~frames:2 ~n_procs:2 ()) with Engine.exec }
            in
            (Runtime.Latency.analyse g ~source:src ~sink:snk
               (Engine.trace (Engine.run net d a.List_scheduler.schedule cfg)))
              .Runtime.Latency.max_reaction
          in
          let bound = run Exec_time.constant in
          let jittered = run (Exec_time.uniform ~seed:params.Fppn_apps.Randgen.seed ~min_fraction:0.2) in
          Rat.(jittered <= bound)))

let prop_ta_backend_on_random_networks =
  qprop "generated TA networks reproduce the zero-delay histories" ~count:10
    random_params
    (fun params ->
      match pipeline ~frames:1 ~n_procs:2 params with
      | None -> true
      | Some (net, d, a, _, zd) ->
        let config =
          { (Engine.default_config ~frames:1 ~n_procs:2 ()) with
            Engine.sporadic = [] }
        in
        (* the pipeline used sporadic traces; rebuild them for the TA run *)
        let horizon = d.Derive.hyperperiod in
        let raw =
          Fppn_apps.Randgen.random_traces ~seed:1 ~horizon ~density:0.5 net
        in
        let traces = handled_traces net d ~frames:1 raw in
        let config = { config with Engine.sporadic = traces } in
        let ta =
          Timedauto.Translate.execute
            (Timedauto.Translate.build net d a.List_scheduler.schedule config)
        in
        let zd' =
          Semantics.run net (Semantics.invocations ~sporadic:traces ~horizon net)
        in
        ignore zd;
        eq_sig (Semantics.signature zd') (Timedauto.Translate.signature ta))

(* Jitter invariance needs a shared sporadic trace across runs; Fig. 1
   gives us that directly. *)
let test_fig1_jitter_invariance () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  let sched =
    match snd (List_scheduler.auto ~n_procs:2 d.Derive.graph) with
    | Some a -> a.List_scheduler.schedule
    | None -> Alcotest.fail "fig1 infeasible on 2 processors"
  in
  let run seed =
    let config =
      { (Engine.default_config ~frames:3 ~n_procs:2 ()) with
        Engine.sporadic = [ ("CoefB", [ ms 50; ms 200 ]) ];
        inputs = Fppn_apps.Fig1.input_feed ~samples:64;
        exec = Exec_time.uniform ~seed ~min_fraction:0.1 }
    in
    Engine.signature (Engine.run net d sched config)
  in
  let reference = run 0 in
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d produces identical outputs" seed)
        true
        (eq_sig reference (run seed)))
    [ 1; 2; 3; 17; 99 ]

(* --- FMS end-to-end (Sec. V-B shape) ------------------------------------- *)

let test_fms_pipeline () =
  let net = Fppn_apps.Fms.reduced () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet net in
  let g = d.Derive.graph in
  Alcotest.(check int) "812 jobs" 812 (Graph.n_jobs g);
  (* low load: single processor feasible, no misses online *)
  let attempts, best = List_scheduler.auto ~n_procs:1 g in
  Alcotest.(check bool) "some heuristic feasible on one processor" true
    (best <> None);
  ignore attempts;
  let sched = (Option.get best).List_scheduler.schedule in
  let horizon = d.Derive.hyperperiod in
  let traces =
    Fppn_apps.Fms.random_config_traces ~seed:3 ~horizon ~density:0.4 net
  in
  let traces =
    let _, unhandled = Engine.sporadic_assignment net d ~frames:1 traces in
    List.map
      (fun (n, stamps) ->
        (n, List.filter (fun s -> not (List.mem (n, s) unhandled)) stamps))
      traces
  in
  let config =
    { (Engine.default_config ~frames:1 ~n_procs:1 ()) with
      Engine.sporadic = traces;
      exec = Exec_time.uniform ~seed:7 ~min_fraction:0.6 }
  in
  let rt = Engine.run net d sched config in
  Alcotest.(check int) "no deadline misses (paper: none at load 0.23)" 0
    rt.Engine.stats.Exec_trace.misses;
  let zd = Semantics.run net (Semantics.invocations ~sporadic:traces ~horizon net) in
  Alcotest.(check bool) "deterministic vs zero-delay" true
    (eq_sig (Semantics.signature zd) (Engine.signature rt))

let test_fms_multiprocessor_schedules () =
  (* "we still generated schedules for different number of processors" *)
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fms.wcet (Fppn_apps.Fms.reduced ()) in
  List.iter
    (fun m ->
      match snd (List_scheduler.auto ~n_procs:m d.Derive.graph) with
      | Some a ->
        Alcotest.(check bool)
          (Printf.sprintf "M=%d schedule fits the frame" m)
          true
          Rat.(a.List_scheduler.makespan <= d.Derive.hyperperiod)
      | None -> Alcotest.failf "M=%d should be schedulable" m)
    [ 1; 2; 4 ]

(* --- FFT end-to-end (Sec. V-A shape) -------------------------------------- *)

let fft_schedule p net d ~n_procs =
  match snd (List_scheduler.auto ~n_procs d.Derive.graph) with
  | Some a -> a.List_scheduler.schedule
  | None ->
    (* overload: fall back to the best-effort EDF schedule (misses expected) *)
    ignore p;
    ignore net;
    List_scheduler.schedule_with ~heuristic:Sched.Priority.Alap_edf ~n_procs
      d.Derive.graph

let test_fft_one_vs_two_processors () =
  let p = Fppn_apps.Fft.default_params in
  let net = Fppn_apps.Fft.network p in
  let d = Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map p) net in
  let overhead =
    { Runtime.Platform.first_frame = ms 41; steady_frame = ms 20; per_access = Rat.zero }
  in
  let run ~n_procs =
    let sched = fft_schedule p net d ~n_procs in
    let config =
      { (Engine.default_config ~frames:5 ~n_procs ()) with
        Engine.platform = Runtime.Platform.create ~overhead ~n_procs () }
    in
    (Engine.run net d sched config).Engine.stats
  in
  (* paper: single-processor mapping missed deadlines due to the runtime
     overhead; the two-processor mapping had none *)
  let s1 = run ~n_procs:1 in
  Alcotest.(check bool) "M=1 misses deadlines" true (s1.Exec_trace.misses > 0);
  let s2 = run ~n_procs:2 in
  Alcotest.(check int) "M=2 misses nothing" 0 s2.Exec_trace.misses

let test_fft_output_correct_under_runtime () =
  (* data correctness through the real runtime, not just zero-delay *)
  let p = Fppn_apps.Fft.default_params in
  let net = Fppn_apps.Fft.network p in
  let d = Derive.derive_exn ~wcet:(Fppn_apps.Fft.wcet_map p) net in
  let sched = fft_schedule p net d ~n_procs:2 in
  let feed = Fppn_apps.Fft.input_feed p ~frames:2 in
  let config =
    { (Engine.default_config ~frames:2 ~n_procs:2 ()) with Engine.inputs = feed }
  in
  let rt = Engine.run net d sched config in
  let spectra = List.assoc "spectrum" (Engine.output_history rt) in
  Alcotest.(check int) "two spectra" 2 (List.length spectra);
  List.iteri
    (fun i v ->
      let input =
        match feed "fft_in" (i + 1) with
        | V.List l -> Array.of_list (List.map V.to_complex l)
        | _ -> Alcotest.fail "bad feed"
      in
      let expected = Fppn_apps.Fft.reference_dft input in
      let bins = Fppn_apps.Fft.spectrum_of_output v in
      Alcotest.(check bool)
        (Printf.sprintf "frame %d correct" (i + 1))
        true
        (Array.for_all2
           (fun (ar, ai) (br, bi) ->
             Float.abs (ar -. br) < 1e-6 && Float.abs (ai -. bi) < 1e-6)
           bins expected))
    spectra

let () =
  Alcotest.run "integration"
    [
      ( "random-pipelines",
        [
          prop_runtime_deterministic_vs_zero_delay;
          prop_no_misses_on_feasible_schedules;
          prop_traces_comply_with_real_time_semantics;
          prop_processor_count_invariance;
          prop_ta_backend_on_random_networks;
          prop_latency_wcet_bound_random;
        ] );
      ( "jitter",
        [ Alcotest.test_case "fig1 jitter invariance" `Quick test_fig1_jitter_invariance ] );
      ( "fms",
        [
          Alcotest.test_case "single-processor pipeline" `Slow test_fms_pipeline;
          Alcotest.test_case "multiprocessor schedules" `Slow
            test_fms_multiprocessor_schedules;
        ] );
      ( "fft",
        [
          Alcotest.test_case "1 vs 2 processors" `Quick test_fft_one_vs_two_processors;
          Alcotest.test_case "runtime output correct" `Quick
            test_fft_output_correct_under_runtime;
        ] );
    ]
