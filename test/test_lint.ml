(* Tests for the static analyzer (lib/lint): per-code unit tests over
   inline .fppn sources with position assertions, cleanliness of the
   built-in applications, the QCheck lint-vs-oracle differential, and
   the stability of the JSON rendering. *)

module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module Ast = Fppn_lang.Ast
module D = Fppn_lint.Diagnostic
module Lint = Fppn_lint.Lint
module Randgen = Fppn_apps.Randgen
module Oracle = Fppn_fuzz.Oracle
module Campaign = Fppn_fuzz.Campaign
module Static_diff = Fppn_fuzz.Static_diff
module Checker = Fppn_verify.Checker

let qprop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let lint_src ?processors src =
  Lint.lint_ast ?processors (Fppn_lang.Parser.parse src)

let codes ds = List.map (fun d -> D.code_id d.D.code) ds
let errors_of ds = List.filter D.is_error ds
let has_code c ds = List.mem c (codes ds)

let find_code c ds =
  match List.find_opt (fun d -> D.code_id d.D.code = c) ds with
  | Some d -> d
  | None ->
    Alcotest.failf "expected a %s finding, got: %s" c
      (String.concat ", " (codes ds))

let check_line what expected (d : D.t) =
  match d.D.pos with
  | Some p -> Alcotest.(check int) (what ^ " line") expected p.Ast.line
  | None -> Alcotest.failf "%s carries no position" what

(* --- per-code unit tests over inline sources --------------------------- *)

let test_structure_codes () =
  let ds =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process A : periodic 100 deadline 100 extern;
  channel blackboard c : A -> X;
  channel blackboard d : A -> A;
  channel blackboard e : A -> A;
  channel blackboard e : A -> A;
  priority A -> Y;
}|}
  in
  check_line "FPPN002" 3 (find_code "FPPN002" ds);
  check_line "FPPN001" 4 (find_code "FPPN001" ds);
  check_line "FPPN003" 5 (find_code "FPPN003" ds);
  check_line "FPPN004" 7 (find_code "FPPN004" ds);
  Alcotest.(check bool) "priority to undeclared process flagged" true
    (List.exists
       (fun d ->
         D.code_id d.D.code = "FPPN001"
         && d.D.subject = "priority A -> Y")
       ds)

let test_determinism_race () =
  let ds =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 200 deadline 200 extern;
  channel blackboard c : A -> B;
}|}
  in
  let d = find_code "FPPN010" ds in
  Alcotest.(check string) "pair subject" "A ./ B" d.D.subject;
  Alcotest.(check bool) "severity error" true (D.is_error d);
  check_line "FPPN010" 4 d;
  Alcotest.(check bool) "coincidence evidence names the lcm" true
    (let sub = "every 200 ms" in
     let msg = d.D.message in
     let rec mem i =
       i + String.length sub <= String.length msg
       && (String.sub msg i (String.length sub) = sub || mem (i + 1))
     in
     mem 0)

let test_race_with_sporadic () =
  let ds =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process S : sporadic 1 per 100 deadline 200 extern;
  channel blackboard c : S -> A;
}|}
  in
  ignore (find_code "FPPN010" ds)

let test_transitive_only () =
  let ds =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  process C : periodic 100 deadline 100 extern;
  channel blackboard ab : A -> B;
  channel blackboard bc : B -> C;
  channel blackboard ac : A -> C;
  priority A -> B;
  priority B -> C;
}|}
  in
  let d = find_code "FPPN011" ds in
  Alcotest.(check string) "pair subject" "A ./ C" d.D.subject;
  Alcotest.(check bool) "warning, not error" false (D.is_error d);
  Alcotest.(check bool) "no race reported" false (has_code "FPPN010" ds)

let test_priority_cycle () =
  let ds =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  priority A -> B;
  priority B -> A;
}|}
  in
  let d = find_code "FPPN020" ds in
  Alcotest.(check bool) "severity error" true (D.is_error d)

let test_redundant_edge () =
  let ds =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  process C : periodic 100 deadline 100 extern;
  channel blackboard ab : A -> B;
  channel blackboard bc : B -> C;
  priority A -> B;
  priority B -> C;
  priority A -> C;
}|}
  in
  let d = find_code "FPPN021" ds in
  Alcotest.(check string) "edge subject" "priority A -> C" d.D.subject;
  check_line "FPPN021" 9 d

let test_counter_dataflow () =
  let ds =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  channel blackboard c : A -> B;
  priority B -> A;
}|}
  in
  let d = find_code "FPPN022" ds in
  Alcotest.(check string) "channel subject" "channel c" d.D.subject;
  Alcotest.(check bool) "info severity" false (D.is_error d);
  Alcotest.(check bool) "no race (pair is ordered)" false (has_code "FPPN010" ds)

let test_subclass_codes () =
  let no_user =
    lint_src
      {|network t {
  process S : sporadic 1 per 100 deadline 200 extern;
}|}
  in
  check_line "FPPN030" 2 (find_code "FPPN030" no_user);
  let ambiguous =
    lint_src
      {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  process S : sporadic 1 per 100 deadline 200 extern;
  channel blackboard sa : S -> A;
  channel blackboard sb : S -> B;
  priority S -> A;
  priority S -> B;
}|}
  in
  ignore (find_code "FPPN031" ambiguous);
  let sporadic_user =
    lint_src
      {|network t {
  process S : sporadic 1 per 100 deadline 200 extern;
  process T : sporadic 1 per 100 deadline 200 extern;
  channel blackboard st : S -> T;
  priority S -> T;
}|}
  in
  ignore (find_code "FPPN032" sporadic_user);
  let period_exceeds =
    lint_src
      {|network t {
  process U : periodic 200 deadline 200 extern;
  process S : sporadic 1 per 100 deadline 200 extern;
  channel blackboard su : S -> U;
  priority S -> U;
}|}
  in
  check_line "FPPN033" 3 (find_code "FPPN033" period_exceeds)

let test_channel_misuse_codes () =
  let dead_read =
    lint_src
      {|network t {
  process W : periodic 100 deadline 100 {
    var x := 0;
    loc main { when true do x := x + 1, x ! c goto main; }
  }
  process R : periodic 100 deadline 100 {
    var y := 0;
    loc main { when true do y := y + 1 goto main; }
  }
  channel blackboard c : W -> R;
  priority W -> R;
}|}
  in
  check_line "FPPN040" 10 (find_code "FPPN040" dead_read);
  let never_written =
    lint_src
      {|network t {
  process W : periodic 100 deadline 100 {
    var x := 0;
    loc main { when true do x := x + 1 goto main; }
  }
  process R : periodic 100 deadline 100 {
    var y := 0;
    loc main { when true do y ? c goto main; }
  }
  channel blackboard c : W -> R;
  priority W -> R;
}|}
  in
  ignore (find_code "FPPN041" never_written);
  let rate =
    lint_src
      {|network t {
  process W : periodic 100 deadline 100 extern;
  process R : periodic 200 deadline 200 extern;
  channel fifo c : W -> R;
  priority W -> R;
}|}
  in
  let d = find_code "FPPN042" rate in
  Alcotest.(check bool) "rate mismatch is a warning" false (D.is_error d)

let test_timing_codes () =
  let dl =
    lint_src
      {|network t {
  process A : periodic 100 deadline 150 extern;
}|}
  in
  let d = find_code "FPPN050" dl in
  Alcotest.(check bool) "d > T is a warning" false (D.is_error d);
  let wcet =
    lint_src
      {|network t {
  process A : periodic 200 deadline 100 wcet 150 extern;
}|}
  in
  Alcotest.(check bool) "C > d is an error" true
    (D.is_error (find_code "FPPN051" wcet));
  let util_src =
    {|network t {
  process A : periodic 100 deadline 100 wcet 80 extern;
  process B : periodic 100 deadline 100 wcet 80 extern;
}|}
  in
  let bound = find_code "FPPN052" (lint_src ~processors:1 util_src) in
  Alcotest.(check bool) "bound exceeded is an error with a count" true
    (D.is_error bound);
  let advisory = find_code "FPPN052" (lint_src util_src) in
  Alcotest.(check bool) "advisory without a count" false (D.is_error advisory)

(* --- built-in applications stay clean ---------------------------------- *)

let test_apps_error_free () =
  let check name net wcet =
    let ds = Lint.lint_network ~wcet:(fun n -> Some (wcet n)) net in
    Alcotest.(check (list string))
      (name ^ " has no error-severity findings")
      [] (codes (errors_of ds))
  in
  check "fig1" (Fppn_apps.Fig1.network ()) Fppn_apps.Fig1.wcet;
  let p = Fppn_apps.Fft.default_params in
  check "fft8" (Fppn_apps.Fft.network p) (Fppn_apps.Fft.wcet_map p);
  check "automotive" (Fppn_apps.Automotive.network ()) Fppn_apps.Automotive.wcet;
  check "fms" (Fppn_apps.Fms.reduced ()) Fppn_apps.Fms.wcet;
  check "fms-original" (Fppn_apps.Fms.original ()) Fppn_apps.Fms.wcet

(* --- elaboration failures carry useful positions ------------------------ *)

let test_elaborate_positions () =
  let src =
    {|network t {
  process A : periodic 100 deadline 100 extern;
  process B : periodic 100 deadline 100 extern;
  channel blackboard c : A -> B;
}|}
  in
  let externs =
    [ ("A", Fppn.Process.Native (fun _ -> ()));
      ("B", Fppn.Process.Native (fun _ -> ())) ]
  in
  match Fppn_lang.Elaborate.to_network ~externs (Fppn_lang.Parser.parse src) with
  | _ -> Alcotest.fail "missing priority must not elaborate"
  | exception Fppn_lang.Elaborate.Error (msg, pos) ->
    Alcotest.(check int) "anchored at the channel declaration" 4 pos.Ast.line;
    Alcotest.(check bool) "message mentions the channel" true
      (let rec mem i =
         i + 3 <= String.length msg
         && (String.sub msg i 3 = {|"c"|} || mem (i + 1))
       in
       mem 0)

(* --- checker integration ------------------------------------------------ *)

let test_checker_fails_fast_on_lint_errors () =
  let spec =
    {
      Randgen.label = "lint-fast-fail";
      periods = [| 100; 100 |];
      chans =
        [ { Randgen.cw = 0; cr = 1; fifo = false; rev_fp = false; no_fp = false } ];
      sporadics = [];
    }
  in
  let net = Randgen.build_exn spec in
  (* WCET far beyond every deadline: FPPN051 fires for every process *)
  let report = Checker.run ~wcet:(fun _ -> Rat.of_int 10_000) net in
  Alcotest.(check bool) "report failed" false report.Checker.passed;
  match report.Checker.checks with
  | [ c ] ->
    Alcotest.(check string) "only the lint check ran" "static lint" c.Checker.name;
    Alcotest.(check bool) "lint check failed" false c.Checker.passed
  | cs -> Alcotest.failf "expected exactly the lint check, got %d" (List.length cs)

let test_checker_leads_with_passing_lint () =
  let spec =
    {
      Randgen.label = "lint-leading";
      periods = [| 100; 100 |];
      chans =
        [ { Randgen.cw = 0; cr = 1; fifo = false; rev_fp = false; no_fp = false } ];
      sporadics = [];
    }
  in
  let net = Randgen.build_exn spec in
  let config =
    { Checker.default_config with Checker.processor_counts = [ 1 ]; frames = 1 }
  in
  let report = Checker.run ~config ~wcet:(fun _ -> Rat.of_int 10) net in
  match report.Checker.checks with
  | c :: _ ->
    Alcotest.(check string) "leading check" "static lint" c.Checker.name;
    Alcotest.(check bool) "leading check passed" true c.Checker.passed;
    Alcotest.(check bool) "more checks follow" true
      (List.length report.Checker.checks > 1)
  | [] -> Alcotest.fail "empty report"

(* --- JSON schema stability ---------------------------------------------- *)

let test_json_schema_stable () =
  let d1 =
    D.make ~file:"f.fppn" ~pos:{ Ast.line = 3; col = 7 } D.Determinism_race
      ~subject:"A ./ B" "msg"
  in
  let d2 = D.make D.Fifo_rate_mismatch ~subject:"channel c" "m2" in
  (* d2 listed first on purpose: to_json must apply the canonical sort *)
  Alcotest.(check string) "schema v1"
    ("{\"version\":1,\"errors\":1,\"warnings\":1,\"infos\":0,\"diagnostics\":["
   ^ "{\"code\":\"FPPN010\",\"severity\":\"error\",\"subject\":\"A ./ B\","
   ^ "\"message\":\"msg\",\"file\":\"f.fppn\",\"line\":3,\"col\":7},"
   ^ "{\"code\":\"FPPN042\",\"severity\":\"warning\",\"subject\":\"channel c\","
   ^ "\"message\":\"m2\",\"file\":null,\"line\":null,\"col\":null}]}")
    (D.to_json [ d2; d1 ])

let test_all_codes_unique () =
  let ids = List.map (fun (c, _, _) -> D.code_id c) D.all_codes in
  Alcotest.(check int) "no duplicate code ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* --- QCheck: lint vs generator vs oracle -------------------------------- *)

let prop_clean_specs_lint_error_free =
  qprop "clean randgen specs lint error-free" ~count:80
    QCheck2.Gen.(int_range 0 999_999)
    (fun seed ->
      let prng = Prng.create seed in
      let spec = Campaign.draw_spec prng ~max_periodic:6 ~max_sporadic:2 in
      (not (D.has_errors (Lint.lint_spec spec)))
      && not (D.has_errors (Lint.lint_network (Randgen.build_exn spec))))

let prop_seed_race_detected =
  qprop "seed_race yields FPPN010 on the labeled pair" ~count:80
    QCheck2.Gen.(int_range 0 999_999)
    (fun seed ->
      let prng = Prng.create seed in
      let spec = Campaign.draw_spec prng ~max_periodic:6 ~max_sporadic:2 in
      match Randgen.seed_race prng spec with
      | None -> true (* every edge is transitively covered: nothing to seed *)
      | Some (spec', (w, r)) ->
        let a = Randgen.periodic_name w and b = Randgen.periodic_name r in
        let subject =
          if String.compare a b <= 0 then a ^ " ./ " ^ b else b ^ " ./ " ^ a
        in
        Result.is_error (Randgen.build spec')
        && List.exists
             (fun d -> d.D.code = D.Determinism_race && d.D.subject = subject)
             (Lint.lint_spec spec'))

let prop_sabotage_visible_statically =
  qprop "every applicable sabotage is visible statically" ~count:80
    QCheck2.Gen.(
      pair (int_range 0 999_999)
        (oneofl [ Campaign.Inject_channel_flip; Campaign.Inject_sporadic_flip ]))
    (fun (seed, inject) ->
      let prng = Prng.create seed in
      let base = Campaign.draw_spec prng ~max_periodic:6 ~max_sporadic:2 in
      let sabotage = Campaign.choose_sabotage inject prng base in
      match Static_diff.check ~base sabotage with
      | Static_diff.Caught code -> code = "FPPN022"
      | Static_diff.Not_applicable -> true
      | Static_diff.Missed -> false)

let test_static_diff_sweeps () =
  (* >= 200 randgen cases per injection kind, all caught, stable code *)
  List.iter
    (fun (seed, inject) ->
      let s = Static_diff.run ~seed ~budget:220 ~inject () in
      Alcotest.(check bool) "some cases injected" true (s.Static_diff.injected > 0);
      Alcotest.(check int) "none missed" 0 s.Static_diff.missed;
      Alcotest.(check int) "clean specs lint error-free" 0
        s.Static_diff.clean_errors;
      Alcotest.(check (list (pair string int)))
        "all catches share the stable code"
        [ ("FPPN022", s.Static_diff.caught) ]
        s.Static_diff.codes;
      Alcotest.(check bool) "summary passes" true
        (Static_diff.passed ~inject s))
    [ (42, Campaign.Inject_channel_flip); (43, Campaign.Inject_sporadic_flip) ]

let test_lint_clean_implies_oracle_pass () =
  (* the other direction of the differential: a lint-clean workload must
     not make the dynamic determinism oracle diverge *)
  let prng = Prng.create 2024 in
  for _ = 1 to 6 do
    let spec = Campaign.draw_spec prng ~max_periodic:4 ~max_sporadic:1 in
    Alcotest.(check bool) "spec lints clean" false
      (D.has_errors (Lint.lint_spec spec));
    let case =
      {
        Oracle.spec;
        sabotage = Oracle.No_sabotage;
        trace_seed = Prng.int prng 1_000_000;
        jitter_seeds = [ 1 ];
        proc_counts = [ 1; 2 ];
        frames = 2;
        permutations = 2;
        boundary_snap = true;
      }
    in
    match Oracle.check case with
    | Oracle.Fail d -> Alcotest.failf "oracle diverged: %s" d.Oracle.detail
    | Oracle.Pass _ | Oracle.Skip _ -> ()
  done

let () =
  Alcotest.run "lint"
    [
      ( "codes",
        [
          Alcotest.test_case "structure (FPPN001-004)" `Quick test_structure_codes;
          Alcotest.test_case "determinism race (FPPN010)" `Quick test_determinism_race;
          Alcotest.test_case "race with sporadic accessor" `Quick test_race_with_sporadic;
          Alcotest.test_case "transitive-only order (FPPN011)" `Quick test_transitive_only;
          Alcotest.test_case "priority cycle (FPPN020)" `Quick test_priority_cycle;
          Alcotest.test_case "redundant edge (FPPN021)" `Quick test_redundant_edge;
          Alcotest.test_case "counter-dataflow edge (FPPN022)" `Quick test_counter_dataflow;
          Alcotest.test_case "subclass (FPPN030-033)" `Quick test_subclass_codes;
          Alcotest.test_case "channel misuse (FPPN040-042)" `Quick test_channel_misuse_codes;
          Alcotest.test_case "timing (FPPN050-052)" `Quick test_timing_codes;
          Alcotest.test_case "code table unique" `Quick test_all_codes_unique;
        ] );
      ( "integration",
        [
          Alcotest.test_case "built-in apps lint error-free" `Quick test_apps_error_free;
          Alcotest.test_case "elaboration errors carry positions" `Quick test_elaborate_positions;
          Alcotest.test_case "checker fails fast on lint errors" `Quick
            test_checker_fails_fast_on_lint_errors;
          Alcotest.test_case "checker leads with passing lint" `Quick
            test_checker_leads_with_passing_lint;
          Alcotest.test_case "json schema stable" `Quick test_json_schema_stable;
        ] );
      ( "differential",
        [
          prop_clean_specs_lint_error_free;
          prop_seed_race_detected;
          prop_sabotage_visible_statically;
          Alcotest.test_case "static sweeps catch 100% of injections" `Quick
            test_static_diff_sweeps;
          Alcotest.test_case "lint-clean implies oracle pass" `Slow
            test_lint_clean_implies_oracle_pass;
        ] );
    ]
