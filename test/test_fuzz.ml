(* Tests for the differential fuzzing subsystem: the adversarial
   stimulus generators, the determinism oracle, the counterexample
   shrinker and the campaign driver. *)

module Rat = Rt_util.Rat
module Prng = Rt_util.Prng
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module Randgen = Fppn_apps.Randgen
module Adversary = Fppn_fuzz.Adversary
module Oracle = Fppn_fuzz.Oracle
module Shrink = Fppn_fuzz.Shrink
module Campaign = Fppn_fuzz.Campaign
module Report = Fppn_fuzz.Report
module Pool = Rt_util.Pool
module Cosched = Sched.Cosched

let ms = Rat.of_int

let qprop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- adversary --------------------------------------------------------- *)

let prop_permutation_preserves_structure =
  (* shuffling simultaneous invocations must keep (a) times
     nondecreasing and (b) the multiset of invocations per time point *)
  qprop "permute_simultaneous preserves time structure"
    QCheck2.Gen.(pair (int_range 0 9999) (int_range 1 4))
    (fun (seed, frames) ->
      let net = Fppn_apps.Fig1.network () in
      let trace =
        Semantics.invocations ~horizon:(Rat.mul (ms 250) (Rat.of_int frames))
          net
      in
      let permuted = Adversary.permute_simultaneous (Prng.create seed) trace in
      let times inv = List.map (fun i -> i.Semantics.time) inv in
      let nondecreasing l =
        let rec go = function
          | a :: (b :: _ as rest) -> Rat.(a <= b) && go rest
          | _ -> true
        in
        go l
      in
      let key i = (Rat.num i.Semantics.time, Rat.den i.Semantics.time, i.Semantics.process) in
      nondecreasing (times permuted)
      && List.sort compare (List.map key trace)
         = List.sort compare (List.map key permuted))

let prop_permutation_invariant_signature =
  (* Prop. 2.1: the zero-delay signature is invariant under any order of
     simultaneous invocations *)
  qprop "zero-delay signature invariant under permutation" ~count:30
    (QCheck2.Gen.int_range 0 9999)
    (fun seed ->
      let net = Fppn_apps.Fig1.network () in
      let trace = Semantics.invocations ~horizon:(ms 500) net in
      let reference = Semantics.signature (Semantics.run net trace) in
      let permuted = Adversary.permute_simultaneous (Prng.create seed) trace in
      let got = Semantics.signature (Semantics.run net permuted) in
      List.equal
        (fun (n1, h1) (n2, h2) ->
          String.equal n1 n2 && List.equal Fppn.Value.equal h1 h2)
        reference got)

let sporadic_spec =
  (* two periodic + one sporadic, all channel pairs FP-covered *)
  {
    Randgen.label = "fuzz-sporadic";
    periods = [| 100; 200 |];
    chans = [ { Randgen.cw = 0; cr = 1; fifo = false; rev_fp = false; no_fp = false } ];
    sporadics =
      [
        {
          Randgen.sp_name = "S0";
          sp_user = 0;
          sp_burst = 1;
          sp_min_period = 100;
          sp_higher = true;
        };
      ];
  }

let test_boundary_traces_valid () =
  let net = Randgen.build_exn sporadic_spec in
  let d =
    Derive.derive_exn
      ~wcet:(Randgen.wcet ~scale:(Rat.make 1 25) (Derive.const_wcet Rat.one) net)
      net
  in
  List.iter
    (fun seed ->
      let traces = Adversary.boundary_traces net d ~frames:2 ~seed in
      List.iter
        (fun (name, stamps) ->
          let p = Network.process net (Network.find net name) in
          Alcotest.(check bool)
            (Printf.sprintf "trace of %s valid (seed %d)" name seed)
            true
            (Event.is_valid_sporadic_trace (Process.event p) stamps);
          let horizon = Rat.mul d.Derive.hyperperiod (ms 2) in
          List.iter
            (fun s ->
              Alcotest.(check bool) "stamp within horizon" true
                (Rat.(s >= Rat.zero) && Rat.(s < horizon)))
            stamps)
        traces)
    [ 1; 7; 42 ]

let test_merge_traces_valid () =
  let net = Randgen.build_exn sporadic_spec in
  let d =
    Derive.derive_exn
      ~wcet:(Randgen.wcet ~scale:(Rat.make 1 25) (Derive.const_wcet Rat.one) net)
      net
  in
  let a = Adversary.boundary_traces net d ~frames:2 ~seed:1 in
  let b = Adversary.boundary_traces net d ~frames:2 ~seed:2 in
  let merged = Adversary.merge_traces net a b in
  List.iter
    (fun (name, stamps) ->
      let p = Network.process net (Network.find net name) in
      Alcotest.(check bool) "merged trace valid" true
        (Event.is_valid_sporadic_trace (Process.event p) stamps))
    merged

(* --- oracle ------------------------------------------------------------ *)

let base_case spec sabotage =
  {
    Oracle.spec;
    sabotage;
    trace_seed = 5;
    jitter_seeds = [ 1 ];
    proc_counts = [ 1 ];
    frames = 2;
    permutations = 2;
    boundary_snap = true;
  }

(* a 3-process chain W -> R -> X; flipping the FP edge of the W->R
   channel makes R read W's value one job late, observably via X *)
let chain_spec =
  {
    Randgen.label = "fuzz-chain";
    periods = [| 100; 100; 100 |];
    chans =
      [
        { Randgen.cw = 0; cr = 1; fifo = false; rev_fp = false; no_fp = false };
        { Randgen.cw = 1; cr = 2; fifo = false; rev_fp = false; no_fp = false };
      ];
    sporadics = [];
  }

let test_oracle_passes_honest_case () =
  match Oracle.check (base_case chain_spec Oracle.No_sabotage) with
  | Oracle.Pass { comparisons } ->
    Alcotest.(check bool) "made comparisons" true (comparisons > 0)
  | Oracle.Skip why -> Alcotest.failf "unexpected skip: %s" why
  | Oracle.Fail d ->
    Alcotest.failf "unexpected divergence: %s"
      (Format.asprintf "%a" Oracle.pp_divergence d)

let test_oracle_catches_handcrafted_flip () =
  let sabotage = Oracle.Flip_channel_fp { writer = 0; reader = 1 } in
  match Oracle.check (base_case chain_spec sabotage) with
  | Oracle.Fail d ->
    Alcotest.(check bool) "divergence names a channel" true
      (d.Oracle.channel <> None)
  | Oracle.Pass _ -> Alcotest.fail "flipped FP edge not caught"
  | Oracle.Skip why -> Alcotest.failf "unexpected skip: %s" why

let test_oracle_deterministic () =
  let case = base_case chain_spec (Oracle.Flip_channel_fp { writer = 0; reader = 1 }) in
  let d1 = Oracle.check case and d2 = Oracle.check case in
  Alcotest.(check bool) "same verdict twice" true (d1 = d2)

(* --- shrinker ----------------------------------------------------------- *)

let test_shrink_reaches_minimal_chain () =
  (* start from a larger failing case: chain plus extra periodic
     processes and channels that are irrelevant to the bug *)
  let spec =
    {
      Randgen.label = "fuzz-padded";
      periods = [| 100; 100; 100; 200; 400 |];
      chans =
        [
          { Randgen.cw = 0; cr = 1; fifo = false; rev_fp = false; no_fp = false };
          { Randgen.cw = 1; cr = 2; fifo = false; rev_fp = false; no_fp = false };
          { Randgen.cw = 2; cr = 3; fifo = true; rev_fp = false; no_fp = false };
          { Randgen.cw = 3; cr = 4; fifo = false; rev_fp = false; no_fp = false };
        ];
      sporadics =
        [
          {
            Randgen.sp_name = "S0";
            sp_user = 4;
            sp_burst = 1;
            sp_min_period = 400;
            sp_higher = true;
          };
        ];
    }
  in
  let case =
    {
      (base_case spec (Oracle.Flip_channel_fp { writer = 0; reader = 1 })) with
      Oracle.proc_counts = [ 1; 2 ];
      jitter_seeds = [ 1; 2 ];
    }
  in
  (match Oracle.check case with
  | Oracle.Fail _ -> ()
  | _ -> Alcotest.fail "padded case should fail");
  let r = Shrink.minimise case in
  Alcotest.(check bool) "some moves accepted" true (r.Shrink.accepted > 0);
  Alcotest.(check bool) "shrunk to at most 4 processes" true
    (Oracle.case_processes r.Shrink.shrunk <= 4);
  (* the shrunk case still fails, and on the sabotaged channel *)
  (match Oracle.check r.Shrink.shrunk with
  | Oracle.Fail _ -> ()
  | _ -> Alcotest.fail "shrunk case no longer fails");
  (* shrinking is deterministic *)
  let r' = Shrink.minimise case in
  Alcotest.(check bool) "shrink deterministic" true
    (r.Shrink.shrunk = r'.Shrink.shrunk)

let test_shrink_keeps_sabotage_target () =
  let case =
    base_case chain_spec (Oracle.Flip_channel_fp { writer = 0; reader = 1 })
  in
  let r = Shrink.minimise case in
  match Oracle.sut_spec r.Shrink.shrunk with
  | None -> Alcotest.fail "sabotage target was shrunk away"
  | Some _ -> ()

(* --- campaign ----------------------------------------------------------- *)

let test_honest_campaign_finds_nothing () =
  let config = { Campaign.default_config with Campaign.budget = 8 } in
  let report = Campaign.run config in
  Alcotest.(check bool) "passed" true (Report.passed report);
  Alcotest.(check int) "all cases run" 8 report.Report.cases_run;
  Alcotest.(check bool) "made comparisons" true (report.Report.comparisons > 0)

let test_injected_campaign_catches_and_shrinks () =
  let config =
    {
      Campaign.default_config with
      Campaign.budget = 6;
      inject = Campaign.Inject_channel_flip;
    }
  in
  let report = Campaign.run config in
  Alcotest.(check bool) "injection caught" false (Report.passed report);
  List.iter
    (fun (cx : Report.counterexample) ->
      Alcotest.(check bool) "shrunk to at most 4 processes" true
        (Oracle.case_processes cx.Report.shrunk <= 4);
      Alcotest.(check bool) "shrunk is no larger than original" true
        (Oracle.case_processes cx.Report.shrunk
        <= Oracle.case_processes cx.Report.original))
    report.Report.counterexamples

let test_campaign_deterministic () =
  let config =
    {
      Campaign.default_config with
      Campaign.budget = 4;
      inject = Campaign.Inject_channel_flip;
    }
  in
  let r1 = Campaign.run config and r2 = Campaign.run config in
  Alcotest.(check int) "same counterexample count"
    (List.length r1.Report.counterexamples)
    (List.length r2.Report.counterexamples);
  (* wall-clock fields vary between runs; everything else must not *)
  Alcotest.(check string) "same json"
    (Report.to_json (Report.normalize_timing r1))
    (Report.to_json (Report.normalize_timing r2))

let test_campaign_parallel_equals_sequential () =
  (* the whole point of the pool: jobs must be unobservable apart from
     wall-clock fields, for passing and failing campaigns alike *)
  List.iter
    (fun inject ->
      let config =
        { Campaign.default_config with Campaign.budget = 6; inject }
      in
      let seq = Campaign.run ~jobs:1 config in
      let par = Campaign.run ~jobs:4 config in
      Alcotest.(check int) "jobs recorded" 4 par.Report.jobs;
      Alcotest.(check string) "jobs=4 report equals jobs=1"
        (Report.to_json (Report.normalize_timing seq))
        (Report.to_json (Report.normalize_timing par)))
    [ Campaign.No_injection; Campaign.Inject_channel_flip ]

let test_campaign_records_case_times () =
  let config = { Campaign.default_config with Campaign.budget = 5 } in
  let report = Campaign.run config in
  Alcotest.(check int) "one timing per case" report.Report.cases_run
    (Array.length report.Report.case_times_s);
  Array.iter
    (fun t -> Alcotest.(check bool) "case time nonnegative" true (t >= 0.0))
    report.Report.case_times_s;
  Alcotest.(check bool) "wall time positive" true (report.Report.wall_time_s > 0.0);
  Alcotest.(check bool) "throughput positive" true (Report.cases_per_s report > 0.0)

let test_report_json_shape () =
  let config =
    {
      Campaign.default_config with
      Campaign.budget = 3;
      inject = Campaign.Inject_channel_flip;
    }
  in
  let report = Campaign.run config in
  let json = Report.to_json report in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %s" needle)
        true (contains needle))
    [
      "\"seed\"";
      "\"passed\"";
      "\"counterexamples\"";
      "\"spec\"";
      "\"sabotage\"";
      "\"trace_seed\"";
    ]

(* --- co-scheduling over fuzzed workloads -------------------------------- *)

(* the same spec distribution the campaign samples, reused to exercise
   Cosched: pairs of drawn workloads are co-scheduled and the verdict
   must be invariant under the worker pool (jobs=4 = jobs=1), and the
   drawn specs themselves must stay honest under the oracle *)

let drawn_specs n =
  let prng = Prng.create 77 in
  List.init n (fun _ ->
      Campaign.draw_spec prng ~max_periodic:3 ~max_sporadic:1)

let graph_of_spec spec =
  let net = Randgen.build_exn spec in
  let d =
    Derive.derive_exn
      ~wcet:(Randgen.wcet ~scale:(Rat.make 1 4) (Derive.const_wcet Rat.one) net)
      net
  in
  d.Derive.graph

let test_cosched_pairs_jobs_invariant () =
  let specs = drawn_specs 6 in
  let rec pairs = function
    | a :: b :: rest -> (a, b) :: pairs rest
    | _ -> []
  in
  List.iteri
    (fun i (sa, sb) ->
      let apps =
        [
          { Cosched.app_name = "a"; app_priority = 0; graph = graph_of_spec sa };
          { Cosched.app_name = "b"; app_priority = 1; graph = graph_of_spec sb };
        ]
      in
      List.iter
        (fun variant ->
          let seq_attempts, seq_chosen =
            Cosched.auto ~variant ~n_procs:2 apps
          in
          let par_attempts, par_chosen =
            Pool.with_pool ~jobs:4 (fun pool ->
                Cosched.auto ~pool ~variant ~n_procs:2 apps)
          in
          let ctx =
            Printf.sprintf "pair %d, %s" i (Cosched.variant_to_string variant)
          in
          Alcotest.(check int)
            (ctx ^ ": same attempt count")
            (List.length seq_attempts)
            (List.length par_attempts);
          List.iter2
            (fun (s : Cosched.attempt) (p : Cosched.attempt) ->
              Alcotest.(check bool)
                (ctx ^ ": same heuristic order")
                true (s.Cosched.heuristic = p.Cosched.heuristic);
              Alcotest.(check string)
                (ctx ^ ": jobs=4 attempt equals jobs=1")
                (Cosched.to_json s.Cosched.result)
                (Cosched.to_json p.Cosched.result))
            seq_attempts par_attempts;
          match (seq_chosen, par_chosen) with
          | None, None -> ()
          | Some s, Some p ->
            Alcotest.(check string)
              (ctx ^ ": jobs=4 chosen equals jobs=1")
              (Cosched.to_json s.Cosched.result)
              (Cosched.to_json p.Cosched.result)
          | _ -> Alcotest.failf "%s: pool changed the admission verdict" ctx)
        [ Cosched.Fair; Cosched.Slots ])
    (pairs specs)

let test_cosched_drawn_specs_honest () =
  (* an honest (unsabotaged) drawn workload must never diverge under the
     oracle, whether or not its graphs are co-schedulable *)
  List.iteri
    (fun i spec ->
      match Oracle.check (base_case spec Oracle.No_sabotage) with
      | Oracle.Pass _ | Oracle.Skip _ -> ()
      | Oracle.Fail d ->
        Alcotest.failf "drawn spec %d diverged: %s" i
          (Format.asprintf "%a" Oracle.pp_divergence d))
    (drawn_specs 4)

let () =
  Alcotest.run "fuzz"
    [
      ( "adversary",
        [
          prop_permutation_preserves_structure;
          prop_permutation_invariant_signature;
          Alcotest.test_case "boundary traces valid" `Quick
            test_boundary_traces_valid;
          Alcotest.test_case "merged traces valid" `Quick test_merge_traces_valid;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "honest case passes" `Quick
            test_oracle_passes_honest_case;
          Alcotest.test_case "handcrafted flip caught" `Quick
            test_oracle_catches_handcrafted_flip;
          Alcotest.test_case "deterministic" `Quick test_oracle_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "reaches minimal chain" `Quick
            test_shrink_reaches_minimal_chain;
          Alcotest.test_case "keeps sabotage target" `Quick
            test_shrink_keeps_sabotage_target;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "honest campaign passes" `Quick
            test_honest_campaign_finds_nothing;
          Alcotest.test_case "injected bug caught and shrunk" `Quick
            test_injected_campaign_catches_and_shrinks;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "parallel equals sequential" `Quick
            test_campaign_parallel_equals_sequential;
          Alcotest.test_case "per-case timings recorded" `Quick
            test_campaign_records_case_times;
          Alcotest.test_case "json report shape" `Quick test_report_json_shape;
        ] );
      ( "cosched",
        [
          Alcotest.test_case "co-scheduled pairs jobs-invariant" `Quick
            test_cosched_pairs_jobs_invariant;
          Alcotest.test_case "drawn specs honest under oracle" `Quick
            test_cosched_drawn_specs_honest;
        ] );
    ]
