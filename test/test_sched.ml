module Rat = Rt_util.Rat
module Digraph = Rt_util.Digraph
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Priority = Sched.Priority
module Static_schedule = Sched.Static_schedule
module List_scheduler = Sched.List_scheduler

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal

let mk_job id ?(name = Printf.sprintf "P%d" id) ?(k = 1) a d c =
  {
    Job.id;
    proc = id;
    proc_name = name;
    k;
    arrival = ms a;
    deadline = ms d;
    wcet = ms c;
    is_server = false;
  }

let chain3 () =
  (* J0 -> J1 -> J2, plenty of slack *)
  let jobs = [| mk_job 0 0 300 50; mk_job 1 0 300 50; mk_job 2 0 300 50 |] in
  let dag = Digraph.create 3 in
  Digraph.add_edge dag 0 1;
  Digraph.add_edge dag 1 2;
  Graph.make jobs dag

(* --- priority heuristics ------------------------------------------------ *)

let test_heuristic_orders () =
  let jobs =
    [| mk_job 0 0 300 10; mk_job 1 0 100 10; mk_job 2 50 200 10 |]
  in
  let g = Graph.make jobs (Digraph.create 3) in
  Alcotest.(check (array int)) "EDF-nominal sorts by deadline" [| 1; 2; 0 |]
    (Priority.order g Priority.Edf_nominal);
  Alcotest.(check (array int)) "FIFO sorts by arrival" [| 0; 1; 2 |]
    (Priority.order g Priority.Fifo_arrival);
  Alcotest.(check (array int)) "DM sorts by relative deadline" [| 1; 2; 0 |]
    (Priority.order g Priority.Deadline_monotonic);
  (* rank is the inverse of order *)
  let rank = Priority.rank g Priority.Edf_nominal in
  Alcotest.(check int) "rank of highest" 0 rank.(1);
  Alcotest.(check int) "rank of lowest" 2 rank.(0)

let test_blevel_priority () =
  let g = chain3 () in
  Alcotest.(check (array int)) "b-level: deepest first" [| 0; 1; 2 |]
    (Priority.order g Priority.B_level)

let test_heuristic_strings () =
  List.iter
    (fun h ->
      match Priority.of_string (Priority.to_string h) with
      | Some h' -> Alcotest.(check bool) "roundtrip" true (h = h')
      | None -> Alcotest.fail "of_string failed")
    Priority.all;
  Alcotest.(check bool) "unknown string" true (Priority.of_string "bogus" = None)

(* --- static schedule checker -------------------------------------------- *)

let entry proc start = { Static_schedule.proc; start = ms start }

let test_check_valid () =
  let g = chain3 () in
  let s = Static_schedule.make ~n_procs:2 [| entry 0 0; entry 1 50; entry 0 100 |] in
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (Format.asprintf "%a" (Static_schedule.pp_violation g))
       (Static_schedule.check g s));
  Alcotest.check rat "makespan" (ms 150) (Static_schedule.makespan g s);
  Alcotest.(check (list int)) "static order on M1" [ 0; 2 ] (Static_schedule.jobs_on s 0)

let test_check_violations () =
  let g = chain3 () in
  (* J1 starts before J0 completes; J2 overlaps J0 on processor 0;
     also J2 starts before its predecessor J1 finishes *)
  let s = Static_schedule.make ~n_procs:2 [| entry 0 0; entry 1 20; entry 0 30 |] in
  let vs = Static_schedule.check g s in
  let has p = List.exists p vs in
  Alcotest.(check bool) "precedence violated" true
    (has (function Static_schedule.Precedence _ -> true | _ -> false));
  Alcotest.(check bool) "overlap detected" true
    (has (function Static_schedule.Overlap _ -> true | _ -> false));
  Alcotest.(check bool) "not feasible" false (Static_schedule.is_feasible g s)

let test_check_arrival_deadline () =
  let jobs = [| mk_job 0 100 150 20 |] in
  let g = Graph.make jobs (Digraph.create 1) in
  let early = Static_schedule.make ~n_procs:1 [| entry 0 50 |] in
  Alcotest.(check bool) "arrival violation" true
    (List.exists
       (function Static_schedule.Arrival 0 -> true | _ -> false)
       (Static_schedule.check g early));
  let late = Static_schedule.make ~n_procs:1 [| entry 0 140 |] in
  Alcotest.(check bool) "deadline violation" true
    (List.exists
       (function Static_schedule.Deadline 0 -> true | _ -> false)
       (Static_schedule.check g late))

let test_make_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Static_schedule.make ~n_procs:1 [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "processor out of range rejected" true
    (try
       ignore (Static_schedule.make ~n_procs:1 [| entry 3 0 |]);
       false
     with Invalid_argument _ -> true)

(* --- list scheduler ------------------------------------------------------ *)

let test_list_scheduling_chain () =
  let g = chain3 () in
  let s = List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:2 g in
  Alcotest.(check bool) "feasible" true (Static_schedule.is_feasible g s);
  (* a chain cannot be parallelized: makespan = 150 regardless of M *)
  Alcotest.check rat "chain makespan" (ms 150) (Static_schedule.makespan g s)

let test_list_scheduling_parallelism () =
  (* two independent jobs must run in parallel on two processors *)
  let jobs = [| mk_job 0 0 100 80; mk_job 1 0 100 80 |] in
  let g = Graph.make jobs (Digraph.create 2) in
  let s1 = List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:1 g in
  Alcotest.(check bool) "M=1 infeasible (160 > 100)" false
    (Static_schedule.is_feasible g s1);
  let s2 = List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:2 g in
  Alcotest.(check bool) "M=2 feasible" true (Static_schedule.is_feasible g s2);
  Alcotest.check rat "parallel makespan" (ms 80) (Static_schedule.makespan g s2);
  Alcotest.(check bool) "jobs on different processors" true
    (Static_schedule.proc s2 0 <> Static_schedule.proc s2 1)

let test_list_scheduling_respects_arrival () =
  let jobs = [| mk_job 0 100 300 50 |] in
  let g = Graph.make jobs (Digraph.create 1) in
  let s = List_scheduler.schedule_with ~heuristic:Priority.Fifo_arrival ~n_procs:1 g in
  Alcotest.check rat "waits for arrival" (ms 100) (Static_schedule.start s 0)

let test_list_scheduling_priority_decides () =
  (* two ready jobs, one processor: the higher-priority one goes first *)
  let jobs = [| mk_job 0 0 400 50; mk_job 1 0 100 50 |] in
  let g = Graph.make jobs (Digraph.create 2) in
  let s = List_scheduler.schedule_with ~heuristic:Priority.Edf_nominal ~n_procs:1 g in
  Alcotest.check rat "urgent job first" (ms 0) (Static_schedule.start s 1);
  Alcotest.check rat "other second" (ms 50) (Static_schedule.start s 0)

let test_auto_fig1 () =
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()) in
  let g = d.Derive.graph in
  (* 10 jobs x 25 ms = 250 ms > 200 ms: one processor cannot work *)
  let _, best1 = List_scheduler.auto ~n_procs:1 g in
  Alcotest.(check bool) "M=1 infeasible" true (best1 = None);
  (* the paper's Fig. 4 uses two processors *)
  let attempts, best2 = List_scheduler.auto ~n_procs:2 g in
  Alcotest.(check int) "all heuristics tried" (List.length Priority.all)
    (List.length attempts);
  match best2 with
  | None -> Alcotest.fail "M=2 must be feasible as in Fig. 4"
  | Some a ->
    Alcotest.(check bool) "chosen attempt is feasible" true
      a.List_scheduler.feasible;
    Alcotest.(check bool) "fits in the frame" true
      Rat.(a.List_scheduler.makespan <= ms 200)

let test_auto_parallel_equals_sequential () =
  (* evaluating the heuristic portfolio on a pool must not change the
     attempt list or the chosen schedule *)
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()) in
  let g = d.Derive.graph in
  let seq_attempts, seq_best = List_scheduler.auto ~n_procs:2 g in
  Rt_util.Pool.with_pool ~jobs:4 (fun pool ->
      let par_attempts, par_best = List_scheduler.auto ~pool ~n_procs:2 g in
      Alcotest.(check bool) "same attempts in same order" true
        (seq_attempts = par_attempts);
      Alcotest.(check bool) "same chosen attempt" true (seq_best = par_best))

let test_cosched_auto_parallel_equals_sequential () =
  (* the multi-application portfolio must be pool-invariant too, for
     both co-scheduling variants *)
  let module Cosched = Sched.Cosched in
  let graph_of wcet net = (Derive.derive_exn ~wcet net).Derive.graph in
  let apps =
    [
      {
        Cosched.app_name = "fig1";
        app_priority = 0;
        graph = graph_of Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ());
      };
      {
        Cosched.app_name = "auto";
        app_priority = 1;
        graph =
          graph_of Fppn_apps.Automotive.wcet (Fppn_apps.Automotive.network ());
      };
    ]
  in
  List.iter
    (fun variant ->
      let seq_attempts, seq_chosen = Cosched.auto ~variant ~n_procs:3 apps in
      Rt_util.Pool.with_pool ~jobs:4 (fun pool ->
          let par_attempts, par_chosen =
            Cosched.auto ~pool ~variant ~n_procs:3 apps
          in
          let name = Cosched.variant_to_string variant in
          Alcotest.(check int)
            (name ^ ": same attempt count")
            (List.length seq_attempts)
            (List.length par_attempts);
          List.iter2
            (fun (s : Cosched.attempt) (p : Cosched.attempt) ->
              Alcotest.(check bool)
                (name ^ ": same heuristic order")
                true (s.Cosched.heuristic = p.Cosched.heuristic);
              Alcotest.(check string)
                (name ^ ": same attempt schedule")
                (Cosched.to_json s.Cosched.result)
                (Cosched.to_json p.Cosched.result))
            seq_attempts par_attempts;
          match (seq_chosen, par_chosen) with
          | None, None -> ()
          | Some s, Some p ->
            Alcotest.(check string)
              (name ^ ": same chosen schedule")
              (Cosched.to_json s.Cosched.result)
              (Cosched.to_json p.Cosched.result)
          | _ -> Alcotest.failf "%s: pool changed feasibility verdict" name))
    [ Cosched.Fair; Cosched.Slots ]

(* --- priority optimizer ----------------------------------------------------- *)

let test_optimizer_never_worse () =
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()) in
  let g = d.Derive.graph in
  let base =
    List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:2 g
  in
  let o = Sched.Optimizer.improve ~seed:3 ~iterations:100 ~n_procs:2 g in
  Alcotest.(check bool) "still feasible" true o.Sched.Optimizer.feasible;
  Alcotest.(check bool) "makespan not worse" true
    Rat.(o.Sched.Optimizer.makespan <= Static_schedule.makespan g base);
  Alcotest.(check bool) "resulting schedule is structurally valid" true
    (List.for_all
       (function Static_schedule.Deadline _ -> true | _ -> false)
       (Static_schedule.check g o.Sched.Optimizer.schedule))

let test_optimizer_repairs_bad_heuristic () =
  (* FIFO misses a deadline on fig1; the optimizer should repair it *)
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()) in
  let g = d.Derive.graph in
  let base = List_scheduler.schedule_with ~heuristic:Priority.Fifo_arrival ~n_procs:2 g in
  Alcotest.(check bool) "FIFO baseline infeasible" false
    (Static_schedule.is_feasible g base);
  let o =
    Sched.Optimizer.improve ~seed:7 ~iterations:600 ~start:Priority.Fifo_arrival
      ~n_procs:2 g
  in
  Alcotest.(check bool) "optimizer repaired feasibility" true
    o.Sched.Optimizer.feasible;
  Alcotest.(check bool) "some swaps were accepted" true
    (o.Sched.Optimizer.improvements > 0)

let test_optimizer_deterministic () =
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()) in
  let g = d.Derive.graph in
  let a = Sched.Optimizer.improve ~seed:5 ~iterations:50 ~n_procs:2 g in
  let b = Sched.Optimizer.improve ~seed:5 ~iterations:50 ~n_procs:2 g in
  Alcotest.(check (array int)) "same seed, same ranks" a.Sched.Optimizer.rank
    b.Sched.Optimizer.rank

(* --- exact branch-and-bound --------------------------------------------------- *)

let test_exact_chain () =
  let g = chain3 () in
  let r = Sched.Exact.solve ~n_procs:2 g in
  Alcotest.(check bool) "optimal proved" true r.Sched.Exact.optimal;
  Alcotest.(check (option (testable Rat.pp Rat.equal))) "chain optimum 150"
    (Some (ms 150)) r.Sched.Exact.makespan;
  match r.Sched.Exact.schedule with
  | Some s -> Alcotest.(check bool) "schedule feasible" true (Static_schedule.is_feasible g s)
  | None -> Alcotest.fail "expected a schedule"

let test_exact_beats_or_matches_heuristics () =
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()) in
  let g = d.Derive.graph in
  let r = Sched.Exact.solve ~n_procs:2 g in
  Alcotest.(check bool) "optimal proved on 10 jobs" true r.Sched.Exact.optimal;
  let opt = Option.get r.Sched.Exact.makespan in
  (* ALAP-EDF achieved 125; the optimum can be no larger *)
  Alcotest.(check bool) "optimum <= heuristic" true Rat.(opt <= ms 125);
  (* and no smaller than the critical path *)
  let cp, _ = Taskgraph.Analysis.critical_path g in
  ignore cp;
  let s =
    List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:2 g
  in
  let gap =
    Sched.Exact.optimality_gap ~n_procs:2
      ~heuristic_makespan:(Static_schedule.makespan g s) g
  in
  Alcotest.(check bool) "gap computed and non-negative" true
    (match gap with Some x -> x >= -.1e-9 | None -> false)

let test_exact_detects_infeasibility () =
  (* two serialized 80 ms jobs, both due at 100: infeasible on any M *)
  let jobs = [| mk_job 0 0 100 80; mk_job 1 0 100 80 |] in
  let dag = Digraph.create 2 in
  Digraph.add_edge dag 0 1;
  let g = Graph.make jobs dag in
  let r = Sched.Exact.solve ~n_procs:4 g in
  Alcotest.(check bool) "exhausted" true r.Sched.Exact.optimal;
  Alcotest.(check bool) "no feasible schedule exists" true
    (r.Sched.Exact.schedule = None)

let test_exact_parallel_same_optimum () =
  (* the parallel fan-out must prove the same optimal makespan (the
     witness schedule and node count may legitimately differ) *)
  Rt_util.Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun g ->
          let seq = Sched.Exact.solve ~n_procs:2 g in
          let par = Sched.Exact.solve ~pool ~n_procs:2 g in
          Alcotest.(check bool) "both exhaust" true
            (seq.Sched.Exact.optimal && par.Sched.Exact.optimal);
          Alcotest.(check (option (testable Rat.pp Rat.equal))) "same optimum"
            seq.Sched.Exact.makespan par.Sched.Exact.makespan;
          match par.Sched.Exact.schedule with
          | Some s ->
            Alcotest.(check bool) "parallel witness feasible" true
              (Static_schedule.is_feasible g s)
          | None ->
            Alcotest.(check bool) "no schedule iff sequential agrees" true
              (seq.Sched.Exact.schedule = None))
        [
          chain3 ();
          (Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet (Fppn_apps.Fig1.network ()))
            .Derive.graph;
        ])

let test_exact_respects_budget () =
  let params =
    { Fppn_apps.Randgen.default_params with seed = 9; n_periodic = 7; n_sporadic = 2 }
  in
  let net = Fppn_apps.Randgen.network params in
  let wcet =
    Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 10) (Derive.const_wcet Rat.one) net
  in
  let d = Derive.derive_exn ~wcet net in
  let r = Sched.Exact.solve ~node_budget:500 ~n_procs:2 d.Derive.graph in
  Alcotest.(check bool) "budget respected" true (r.Sched.Exact.nodes <= 501);
  Alcotest.(check bool) "reports incompleteness" true
    ((not r.Sched.Exact.optimal) || r.Sched.Exact.nodes <= 500)

(* --- properties ----------------------------------------------------------- *)

let qprop name ?(count = 60) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let random_params_gen =
  QCheck2.Gen.(
    let* seed = int_range 0 10_000 in
    let* n_periodic = int_range 2 7 in
    let* n_sporadic = int_range 0 2 in
    let* heuristic = oneofl Priority.all in
    let* n_procs = int_range 1 4 in
    return (seed, n_periodic, n_sporadic, heuristic, n_procs))

let prop_schedule_structurally_valid =
  qprop "list schedules satisfy arrival/precedence/mutual-exclusion"
    random_params_gen (fun (seed, n_periodic, n_sporadic, heuristic, n_procs) ->
      let params =
        { Fppn_apps.Randgen.default_params with seed; n_periodic; n_sporadic }
      in
      let net = Fppn_apps.Randgen.network params in
      let wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 20) (Derive.const_wcet Rat.one) net
      in
      let d = Derive.derive_exn ~wcet net in
      let g = d.Derive.graph in
      let s = List_scheduler.schedule_with ~heuristic ~n_procs g in
      (* deadlines may be missed; the structural constraints may not *)
      List.for_all
        (function
          | Static_schedule.Deadline _ -> true
          | Static_schedule.Arrival _ | Static_schedule.Precedence _
          | Static_schedule.Overlap _ -> false)
        (Static_schedule.check g s))

let prop_exact_dominates_heuristic =
  qprop "exact B&B never exceeds the heuristic makespan" ~count:20
    QCheck2.Gen.(pair (int_range 0 5_000) (int_range 2 4))
    (fun (seed, n_periodic) ->
      let params =
        { Fppn_apps.Randgen.default_params with seed; n_periodic; n_sporadic = 1 }
      in
      let net = Fppn_apps.Randgen.network params in
      let wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 10) (Derive.const_wcet Rat.one) net
      in
      let g = (Derive.derive_exn ~wcet net).Derive.graph in
      if Graph.n_jobs g > 14 then true (* keep the search small *)
      else
        let s = List_scheduler.schedule_with ~heuristic:Priority.Alap_edf ~n_procs:2 g in
        let r = Sched.Exact.solve ~node_budget:300_000 ~n_procs:2 g in
        match (r.Sched.Exact.makespan, r.Sched.Exact.optimal) with
        | Some opt, true ->
          (* when the heuristic is feasible, the optimum is no worse *)
          (not (Static_schedule.is_feasible g s))
          || Rat.(opt <= Static_schedule.makespan g s)
        | None, true ->
          (* proved infeasible: the heuristic must miss deadlines too *)
          not (Static_schedule.is_feasible g s)
        | _, false -> true)

let prop_necessary_condition_is_necessary =
  qprop "Prop. 3.1: a feasible schedule implies the necessary condition"
    ~count:40
    QCheck2.Gen.(triple (int_range 0 5_000) (int_range 2 6) (int_range 1 3))
    (fun (seed, n_periodic, n_procs) ->
      let params =
        { Fppn_apps.Randgen.default_params with seed; n_periodic; n_sporadic = 1 }
      in
      let net = Fppn_apps.Randgen.network params in
      let wcet =
        Fppn_apps.Randgen.wcet ~scale:(Rat.make 1 8) (Derive.const_wcet Rat.one) net
      in
      let d = Derive.derive_exn ~wcet net in
      let g = d.Derive.graph in
      match snd (List_scheduler.auto ~n_procs g) with
      | None -> true
      | Some _ ->
        (* a feasible schedule exists: the necessary condition must hold *)
        Taskgraph.Analysis.necessary_condition g ~processors:n_procs = Ok ())

let () =
  Alcotest.run "sched"
    [
      ( "priority",
        [
          Alcotest.test_case "orders" `Quick test_heuristic_orders;
          Alcotest.test_case "b-level" `Quick test_blevel_priority;
          Alcotest.test_case "strings" `Quick test_heuristic_strings;
        ] );
      ( "static-schedule",
        [
          Alcotest.test_case "valid schedule" `Quick test_check_valid;
          Alcotest.test_case "violations" `Quick test_check_violations;
          Alcotest.test_case "arrival/deadline" `Quick test_check_arrival_deadline;
          Alcotest.test_case "make validation" `Quick test_make_validation;
        ] );
      ( "list-scheduler",
        [
          Alcotest.test_case "chain" `Quick test_list_scheduling_chain;
          Alcotest.test_case "parallelism" `Quick test_list_scheduling_parallelism;
          Alcotest.test_case "arrival respected" `Quick
            test_list_scheduling_respects_arrival;
          Alcotest.test_case "priority decides" `Quick
            test_list_scheduling_priority_decides;
          Alcotest.test_case "auto on fig1 (Fig. 4)" `Quick test_auto_fig1;
          Alcotest.test_case "cosched auto on a pool" `Quick
            test_cosched_auto_parallel_equals_sequential;
          Alcotest.test_case "auto on a pool" `Quick
            test_auto_parallel_equals_sequential;
        ] );
      ( "exact",
        [
          Alcotest.test_case "chain optimum" `Quick test_exact_chain;
          Alcotest.test_case "fig1 optimum" `Quick test_exact_beats_or_matches_heuristics;
          Alcotest.test_case "proves infeasibility" `Quick test_exact_detects_infeasibility;
          Alcotest.test_case "node budget" `Quick test_exact_respects_budget;
          Alcotest.test_case "parallel fan-out" `Quick
            test_exact_parallel_same_optimum;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "never worse" `Quick test_optimizer_never_worse;
          Alcotest.test_case "repairs FIFO" `Quick test_optimizer_repairs_bad_heuristic;
          Alcotest.test_case "deterministic" `Quick test_optimizer_deterministic;
        ] );
      ( "properties",
        [
          prop_schedule_structurally_valid;
          prop_necessary_condition_is_necessary;
          prop_exact_dominates_heuristic;
        ] );
    ]
