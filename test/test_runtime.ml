module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Semantics = Fppn.Semantics
module Derive = Taskgraph.Derive
module List_scheduler = Sched.List_scheduler
module Engine = Runtime.Engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace
module Platform = Runtime.Platform
module Uniproc_fp = Runtime.Uniproc_fp

let ms = Rat.of_int
let rat = Alcotest.testable Rat.pp Rat.equal

let eq_sig a b =
  List.equal
    (fun (n1, h1) (n2, h2) -> String.equal n1 n2 && List.equal V.equal h1 h2)
    a b

let schedule_for ?(n_procs = 2) d =
  match snd (List_scheduler.auto ~n_procs d.Derive.graph) with
  | Some a -> a.List_scheduler.schedule
  | None -> Alcotest.fail "no feasible schedule"

(* --- basic engine behaviour ------------------------------------------- *)

let fig1 () =
  let net = Fppn_apps.Fig1.network () in
  let d = Derive.derive_exn ~wcet:Fppn_apps.Fig1.wcet net in
  (net, d)

let test_engine_runs_frames () =
  let net, d = fig1 () in
  let sched = schedule_for d in
  let config = Engine.default_config ~frames:3 ~n_procs:2 () in
  let r = Engine.run net d sched config in
  (* 10 jobs per frame, 2 of which are CoefB server slots (skipped: no
     sporadic events were supplied) *)
  Alcotest.(check int) "executed jobs" (8 * 3) r.Engine.stats.Exec_trace.executed;
  Alcotest.(check int) "skipped server slots" (2 * 3) r.Engine.stats.Exec_trace.skipped;
  Alcotest.(check int) "no misses" 0 r.Engine.stats.Exec_trace.misses;
  Alcotest.(check int) "frames" 3 r.Engine.stats.Exec_trace.frames

let test_engine_respects_wcet_and_deadlines () =
  let net, d = fig1 () in
  let sched = schedule_for d in
  let config =
    { (Engine.default_config ~frames:2 ~n_procs:2 ()) with
      Engine.exec = Exec_time.uniform ~seed:3 ~min_fraction:0.2 }
  in
  let r = Engine.run net d sched config in
  Alcotest.(check int) "no misses with early completions" 0
    r.Engine.stats.Exec_trace.misses;
  (* every record's span fits within [start, start + C] *)
  List.iter
    (fun (rec_ : Exec_trace.record) ->
      if not rec_.Exec_trace.skipped then begin
        let j = Taskgraph.Graph.job d.Derive.graph rec_.Exec_trace.job in
        let dur = Rat.sub rec_.Exec_trace.finish rec_.Exec_trace.start in
        Alcotest.(check bool) "duration <= WCET" true
          Rat.(dur <= j.Taskgraph.Job.wcet)
      end)
    (Engine.trace r)

let test_engine_precedence_order () =
  let net, d = fig1 () in
  let g = d.Derive.graph in
  let sched = schedule_for d in
  let r = Engine.run net d sched (Engine.default_config ~frames:2 ~n_procs:2 ()) in
  (* for every task-graph edge, within each frame, the predecessor must
     finish before the successor starts *)
  let finish = Hashtbl.create 64 and start = Hashtbl.create 64 in
  List.iter
    (fun (rec_ : Exec_trace.record) ->
      Hashtbl.replace finish (rec_.Exec_trace.job, rec_.Exec_trace.frame)
        rec_.Exec_trace.finish;
      Hashtbl.replace start (rec_.Exec_trace.job, rec_.Exec_trace.frame)
        rec_.Exec_trace.start)
    (Engine.trace r);
  List.iter
    (fun (a, b) ->
      for f = 0 to 1 do
        match (Hashtbl.find_opt finish (a, f), Hashtbl.find_opt start (b, f)) with
        | Some ea, Some sb ->
          Alcotest.(check bool)
            (Printf.sprintf "edge (%d,%d) frame %d ordered" a b f)
            true
            Rat.(ea <= sb)
        | _ -> Alcotest.fail "missing records"
      done)
    (Taskgraph.Graph.edges g)

let test_engine_mutual_exclusion () =
  let net, d = fig1 () in
  let sched = schedule_for d in
  let r = Engine.run net d sched (Engine.default_config ~frames:2 ~n_procs:2 ()) in
  (* on each processor, executions never overlap *)
  let by_proc = Hashtbl.create 4 in
  List.iter
    (fun (rec_ : Exec_trace.record) ->
      if not rec_.Exec_trace.skipped then
        Hashtbl.replace by_proc rec_.Exec_trace.proc
          (rec_
          :: (try Hashtbl.find by_proc rec_.Exec_trace.proc with Not_found -> [])))
    (Engine.trace r);
  Hashtbl.iter
    (fun _ records ->
      let sorted =
        List.sort
          (fun (a : Exec_trace.record) b -> Rat.compare a.Exec_trace.start b.Exec_trace.start)
          records
      in
      let rec scan = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "no overlap" true
            Rat.(a.Exec_trace.finish <= b.Exec_trace.start);
          scan rest
        | [ _ ] | [] -> ()
      in
      scan sorted)
    by_proc

(* --- determinism under jitter and processor count (Prop. 2.1/4.1) ----- *)

let test_engine_matches_zero_delay () =
  let net, d = fig1 () in
  let frames = 3 in
  let horizon = Rat.mul d.Derive.hyperperiod (Rat.of_int frames) in
  let coefb = [ ms 50; ms 200 ] in
  let inputs = Fppn_apps.Fig1.input_feed ~samples:64 in
  let zd =
    Semantics.run ~inputs net
      (Semantics.invocations ~sporadic:[ ("CoefB", coefb) ] ~horizon net)
  in
  List.iter
    (fun (n_procs, seed) ->
      let sched = schedule_for ~n_procs d in
      let config =
        { (Engine.default_config ~frames ~n_procs ()) with
          Engine.sporadic = [ ("CoefB", coefb) ];
          inputs;
          exec = Exec_time.uniform ~seed ~min_fraction:0.3 }
      in
      let rt = Engine.run net d sched config in
      Alcotest.(check bool)
        (Printf.sprintf "signature equal on M=%d seed=%d" n_procs seed)
        true
        (eq_sig (Semantics.signature zd) (Engine.signature rt)))
    [ (2, 1); (2, 99); (3, 7); (4, 13) ]

(* --- sporadic boundary rule (Fig. 2) ----------------------------------- *)

(* Sporadic S configures periodic user U; U emits (k, cfg) pairs. *)
let boundary_net ~sporadic_first =
  let b = Network.Builder.create "boundary" in
  Network.Builder.add_process b
    (Process.make ~name:"U"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native
          (fun ctx ->
            let cfg = ctx.Process.read "cfg" in
            ctx.Process.write "o" (V.Pair (V.Int ctx.Process.job_index, cfg)))));
  Network.Builder.add_process b
    (Process.make ~name:"S"
       ~event:(Event.sporadic ~min_period:(ms 100) ~deadline:(ms 150) ())
       (Process.Native
          (fun ctx -> ctx.Process.write "cfg" (V.Int (100 + ctx.Process.job_index)))));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"S"
    ~reader:"U" "cfg";
  if sporadic_first then Network.Builder.add_priority b "S" "U"
  else Network.Builder.add_priority b "U" "S";
  Network.Builder.add_output b ~owner:"U" "o";
  Network.Builder.finish_exn b

let boundary_run ~sporadic_first =
  let net = boundary_net ~sporadic_first in
  let d = Derive.derive_exn ~wcet:(Derive.const_wcet (ms 10)) net in
  let sched = schedule_for ~n_procs:1 d in
  let config =
    { (Engine.default_config ~frames:3 ~n_procs:1 ()) with
      Engine.sporadic = [ ("S", [ ms 100 ]) ] (* exactly on a boundary *) }
  in
  let rt = Engine.run net d sched config in
  (net, d, rt)

let test_boundary_closed_right () =
  (* S -> U: the event at t=100 joins the subset at b=100 and is seen by
     U's job at t=100 *)
  let _, _, rt = boundary_run ~sporadic_first:true in
  let o = List.assoc "o" (Engine.output_history rt) in
  Alcotest.(check (list (testable V.pp V.equal))) "handled at b=100"
    [
      V.Pair (V.Int 1, V.Absent);
      V.Pair (V.Int 2, V.Int 101);
      V.Pair (V.Int 3, V.Int 101);
    ]
    o;
  (* matches the zero-delay semantics of the same trace *)
  let net = boundary_net ~sporadic_first:true in
  let zd =
    Semantics.run net
      (Semantics.invocations ~sporadic:[ ("S", [ ms 100 ]) ] ~horizon:(ms 300) net)
  in
  Alcotest.(check bool) "zero-delay agrees" true
    (eq_sig (Semantics.signature zd) (Engine.signature rt))

let test_boundary_open_right () =
  (* U -> S: the event at t=100 is postponed to the subset at b=200, so
     U's job at t=100 still sees Absent, U at t=200 sees the config *)
  let _, _, rt = boundary_run ~sporadic_first:false in
  let o = List.assoc "o" (Engine.output_history rt) in
  Alcotest.(check (list (testable V.pp V.equal))) "postponed to b=200"
    [
      V.Pair (V.Int 1, V.Absent);
      V.Pair (V.Int 2, V.Absent);
      V.Pair (V.Int 3, V.Int 101);
    ]
    o;
  let net = boundary_net ~sporadic_first:false in
  let zd =
    Semantics.run net
      (Semantics.invocations ~sporadic:[ ("S", [ ms 100 ]) ] ~horizon:(ms 300) net)
  in
  Alcotest.(check bool) "zero-delay agrees" true
    (eq_sig (Semantics.signature zd) (Engine.signature rt))

let test_boundary_assignment_slots () =
  (* Fig. 2 at the window edge, checked at the slot-assignment level: an
     event exactly at b = frame·H is part of the (b-T', b] subset when
     the sporadic has priority over its user, and of the [b, b+T')
     subset — the NEXT frame's slot — otherwise. *)
  let check_case ~sporadic_first ~frames expect_frame =
    let net = boundary_net ~sporadic_first in
    let d = Derive.derive_exn ~wcet:(Derive.const_wcet (ms 10)) net in
    let assigned, unhandled =
      Engine.sporadic_assignment net d ~frames [ ("S", [ ms 100 ]) ]
    in
    let sp = Network.find net "S" in
    let job = Taskgraph.Graph.find_job d.Derive.graph ~proc:sp ~k:1 in
    match expect_frame with
    | Some f ->
      Alcotest.(check (option rat))
        "stamp assigned to the expected frame's slot" (Some (ms 100))
        (Hashtbl.find_opt assigned (job, f));
      Alcotest.(check (list (pair string rat))) "nothing unhandled" [] unhandled
    | None ->
      Alcotest.(check int) "no slot assigned" 0 (Hashtbl.length assigned);
      Alcotest.(check (list (pair string rat))) "reported beyond horizon"
        [ ("S", ms 100) ]
        unhandled
  in
  (* closed-right: t=100 belongs to the frame-1 window (0,100] *)
  check_case ~sporadic_first:true ~frames:2 (Some 1);
  (* closed-left: t=100 belongs to [100,200), i.e. the frame-2 slot ... *)
  check_case ~sporadic_first:false ~frames:3 (Some 2);
  (* ... which with only 2 simulated frames lies beyond the horizon *)
  check_case ~sporadic_first:false ~frames:2 None

let test_unhandled_horizon_events () =
  let net = boundary_net ~sporadic_first:false in
  let d = Derive.derive_exn ~wcet:(Derive.const_wcet (ms 10)) net in
  let sched = schedule_for ~n_procs:1 d in
  (* open-right windows: an event at 250 falls in [200,300) handled at
     b=300 = beyond the 3-frame horizon of 300 *)
  let config =
    { (Engine.default_config ~frames:3 ~n_procs:1 ()) with
      Engine.sporadic = [ ("S", [ ms 250 ]) ] }
  in
  let rt = Engine.run net d sched config in
  Alcotest.(check (list (pair string rat))) "event reported unhandled"
    [ ("S", ms 250) ]
    rt.Engine.unhandled_events

(* --- overhead model ----------------------------------------------------- *)

let test_frame_overhead_delays_start () =
  let net, d = fig1 () in
  let sched = schedule_for d in
  let overhead =
    { Platform.first_frame = ms 41; steady_frame = ms 20; per_access = Rat.zero }
  in
  let config =
    { (Engine.default_config ~frames:2 ~n_procs:2 ()) with
      Engine.platform = Platform.create ~overhead ~n_procs:2 () }
  in
  let r = Engine.run net d sched config in
  List.iter
    (fun (rec_ : Exec_trace.record) ->
      if not rec_.Exec_trace.skipped then begin
        let bound = if rec_.Exec_trace.frame = 0 then ms 41 else ms 220 in
        Alcotest.(check bool) "start delayed past the frame overhead" true
          Rat.(rec_.Exec_trace.start >= bound)
      end)
    (Engine.trace r);
  Alcotest.(check int) "overhead segments reported" 2
    (List.length (Engine.overhead_segments r))

let test_per_access_overhead_inflates_duration () =
  let net, d = fig1 () in
  let sched = schedule_for d in
  let base = Engine.run net d sched (Engine.default_config ~frames:1 ~n_procs:2 ()) in
  let overhead =
    { Platform.first_frame = Rat.zero; steady_frame = Rat.zero; per_access = ms 1 }
  in
  let config =
    { (Engine.default_config ~frames:1 ~n_procs:2 ()) with
      Engine.platform = Platform.create ~overhead ~n_procs:2 () }
  in
  let inflated = Engine.run net d sched config in
  let dur r =
    List.fold_left
      (fun acc (rec_ : Exec_trace.record) ->
        Rat.add acc (Rat.sub rec_.Exec_trace.finish rec_.Exec_trace.start))
      Rat.zero (Engine.trace r)
  in
  Alcotest.(check bool) "total busy time grows with per-access cost" true
    Rat.(dur inflated > dur base)

(* --- uniprocessor fixed-priority baseline ------------------------------- *)

let test_uniproc_rm_equivalence_fms () =
  (* Sec. V-B: FMS under FPPN semantics is functionally equivalent to
     the rate-monotonic uniprocessor prototype *)
  let net = Fppn_apps.Fms.reduced () in
  let horizon = ms 2000 in
  let sporadic =
    [ ("BCPConfig", [ ms 70; ms 430 ]); ("PerformanceConfig", [ ms 120 ]) ]
  in
  let zd =
    Semantics.run net (Semantics.invocations ~sporadic ~horizon net)
  in
  let cfg =
    { (Uniproc_fp.default_config ~wcet:Fppn_apps.Fms.wcet ~horizon) with
      Uniproc_fp.sporadic }
  in
  let up = Uniproc_fp.run net cfg in
  Alcotest.(check int) "no misses at load 0.23" 0 up.Uniproc_fp.misses;
  Alcotest.(check bool) "uniproc RM functionally equivalent to zero-delay"
    true
    (eq_sig (Semantics.signature zd) (Uniproc_fp.signature up))

let test_uniproc_preemption_counted () =
  (* a long low-priority job is preempted by a short high-priority one *)
  let b = Network.Builder.create "preempt" in
  Network.Builder.add_process b
    (Process.make ~name:"Long"
       ~event:(Event.periodic ~period:(ms 1000) ~deadline:(ms 1000) ())
       (Process.Native (fun _ -> ())));
  Network.Builder.add_process b
    (Process.make ~name:"Short"
       ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
       (Process.Native (fun _ -> ())));
  let net = Network.Builder.finish_exn b in
  let wcet = Derive.wcet_of_list (ms 10) [ ("Long", ms 250); ("Short", ms 10) ] in
  let cfg = Uniproc_fp.default_config ~wcet ~horizon:(ms 1000) in
  let up = Uniproc_fp.run net cfg in
  let long_rec =
    List.find (fun r -> r.Uniproc_fp.process = "Long") up.Uniproc_fp.records
  in
  Alcotest.(check bool) "Long was preempted" true
    (long_rec.Uniproc_fp.preemptions >= 2);
  (* RM: Short (smaller period) always runs first at common releases *)
  let short_first =
    List.find (fun r -> r.Uniproc_fp.process = "Short") up.Uniproc_fp.records
  in
  Alcotest.check rat "Short starts at 0" (ms 0) short_first.Uniproc_fp.started

let () =
  Alcotest.run "runtime"
    [
      ( "engine",
        [
          Alcotest.test_case "frames" `Quick test_engine_runs_frames;
          Alcotest.test_case "wcet and deadlines" `Quick
            test_engine_respects_wcet_and_deadlines;
          Alcotest.test_case "precedence order" `Quick test_engine_precedence_order;
          Alcotest.test_case "mutual exclusion" `Quick test_engine_mutual_exclusion;
        ] );
      ( "determinism",
        [ Alcotest.test_case "matches zero-delay" `Quick test_engine_matches_zero_delay ] );
      ( "sporadic",
        [
          Alcotest.test_case "boundary closed-right" `Quick test_boundary_closed_right;
          Alcotest.test_case "boundary open-right" `Quick test_boundary_open_right;
          Alcotest.test_case "boundary slot assignment" `Quick
            test_boundary_assignment_slots;
          Alcotest.test_case "unhandled horizon events" `Quick
            test_unhandled_horizon_events;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "frame overhead" `Quick test_frame_overhead_delays_start;
          Alcotest.test_case "per-access overhead" `Quick
            test_per_access_overhead_inflates_duration;
        ] );
      ( "uniproc",
        [
          Alcotest.test_case "FMS RM equivalence" `Quick test_uniproc_rm_equivalence_fms;
          Alcotest.test_case "preemption" `Quick test_uniproc_preemption_counted;
        ] );
    ]
