(* Tests for the mixed-criticality extension (the paper's "mixed-critical
   scheduling" future-work item): dual schedules, the path-preserving
   graph restriction, and the mode-switched engine. *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Graph = Taskgraph.Graph
module Job = Taskgraph.Job
module Derive = Taskgraph.Derive
module Digraph = Rt_util.Digraph
module Spec = Mixedcrit.Spec
module Dual_schedule = Mixedcrit.Dual_schedule
module Mc_engine = Mixedcrit.Mc_engine
module Exec_time = Runtime.Exec_time
module Exec_trace = Runtime.Exec_trace

let ms = Rat.of_int

(* --- Graph.induced / map_wcet --------------------------------------------- *)

let mk_job id name a d c =
  {
    Job.id;
    proc = id;
    proc_name = name;
    k = 1;
    arrival = ms a;
    deadline = ms d;
    wcet = ms c;
    is_server = false;
  }

let test_induced_preserves_paths () =
  (* A -> B -> C; dropping B must keep A -> C *)
  let jobs = [| mk_job 0 "A" 0 100 10; mk_job 1 "B" 0 100 10; mk_job 2 "C" 0 100 10 |] in
  let dag = Digraph.create 3 in
  Digraph.add_edge dag 0 1;
  Digraph.add_edge dag 1 2;
  let g = Graph.make jobs dag in
  let g', back = Graph.induced ~keep:(fun j -> j.Job.proc_name <> "B") g in
  Alcotest.(check int) "two jobs kept" 2 (Graph.n_jobs g');
  Alcotest.(check (array int)) "id mapping" [| 0; 2 |] back;
  Alcotest.(check bool) "A -> C edge through the dropped job" true
    (Graph.has_edge g' 0 1);
  Alcotest.(check bool) "no jobs kept rejected" true
    (try
       ignore (Graph.induced ~keep:(fun _ -> false) g);
       false
     with Invalid_argument _ -> true)

let test_map_wcet () =
  let jobs = [| mk_job 0 "A" 0 100 10 |] in
  let g = Graph.make jobs (Digraph.create 1) in
  let g' = Graph.map_wcet (fun _ -> ms 42) g in
  Alcotest.(check bool) "wcet replaced" true
    (Rat.equal (Graph.job g' 0).Job.wcet (ms 42));
  Alcotest.(check bool) "original untouched" true
    (Rat.equal (Graph.job g 0).Job.wcet (ms 10))

(* --- the MC scenario -------------------------------------------------------- *)

(* HI control chain Sensor -> Control (period 100) plus two best-effort
   LO processes (Logger, Telemetry) on 2 processors. *)
let mc_net () =
  let b = Network.Builder.create "mc" in
  let add name body =
    Network.Builder.add_process b
      (Process.make ~name
         ~event:(Event.periodic ~period:(ms 100) ~deadline:(ms 100) ())
         (Process.Native body))
  in
  add "Sensor" (fun ctx -> ctx.Process.write "meas" (V.Int ctx.Process.job_index));
  add "Control" (fun ctx ->
      let x = ctx.Process.read "meas" in
      ctx.Process.write "cmd" x;
      ctx.Process.write "act_out" x);
  add "Logger" (fun ctx -> ctx.Process.write "log_out" (ctx.Process.read "cmd"));
  add "Telemetry" (fun ctx ->
      ctx.Process.write "tm_out" (V.Int ctx.Process.job_index));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Sensor"
    ~reader:"Control" "meas";
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Control"
    ~reader:"Logger" "cmd";
  Network.Builder.add_priority b "Sensor" "Control";
  Network.Builder.add_priority b "Control" "Logger";
  Network.Builder.add_output b ~owner:"Control" "act_out";
  Network.Builder.add_output b ~owner:"Logger" "log_out";
  Network.Builder.add_output b ~owner:"Telemetry" "tm_out";
  Network.Builder.finish_exn b

let mc_spec () =
  Spec.of_list ~default_criticality:Spec.Lo
    ~wcet_lo:
      (Derive.wcet_of_list (ms 30)
         [ ("Sensor", ms 15); ("Control", ms 20) ])
    ~hi:[ ("Sensor", ms 40); ("Control", ms 55) ]

let test_spec_accessors () =
  let spec = mc_spec () in
  Alcotest.(check bool) "Sensor is HI" true (Spec.criticality spec "Sensor" = Spec.Hi);
  Alcotest.(check bool) "Logger is LO" true (Spec.criticality spec "Logger" = Spec.Lo);
  Alcotest.(check bool) "C_LO" true (Rat.equal (Spec.wcet_lo spec "Sensor") (ms 15));
  Alcotest.(check bool) "C_HI for HI" true (Rat.equal (Spec.wcet_hi spec "Sensor") (ms 40));
  Alcotest.(check bool) "C_HI = C_LO for LO" true
    (Rat.equal (Spec.wcet_hi spec "Logger") (ms 30))

let test_spec_rejects_inverted_budgets () =
  let bad =
    Spec.of_list ~default_criticality:Spec.Lo
      ~wcet_lo:(Derive.const_wcet (ms 50))
      ~hi:[ ("X", ms 10) ]
  in
  Alcotest.(check bool) "C_HI < C_LO rejected" true
    (try
       ignore (Spec.wcet_hi bad "X");
       false
     with Invalid_argument _ -> true)

let test_dual_schedule_build () =
  let dual = Dual_schedule.build_exn ~n_procs:2 ~spec:(mc_spec ()) (mc_net ()) in
  let full = dual.Dual_schedule.derived.Derive.graph in
  Alcotest.(check int) "full graph: 4 jobs" 4 (Graph.n_jobs full);
  let hi = Option.get dual.Dual_schedule.hi in
  Alcotest.(check int) "hi graph: 2 jobs" 2 (Graph.n_jobs hi.Dual_schedule.hi_graph);
  (* HI graph carries the conservative budgets *)
  Array.iter
    (fun j ->
      let expected = if j.Job.proc_name = "Sensor" then ms 40 else ms 55 in
      Alcotest.(check bool) (j.Job.proc_name ^ " C_HI") true
        (Rat.equal j.Job.wcet expected))
    (Graph.jobs hi.Dual_schedule.hi_graph);
  (* precedence Sensor -> Control survives the restriction *)
  Alcotest.(check bool) "hi edge kept" true
    (Graph.has_edge hi.Dual_schedule.hi_graph 0 1)

let test_dual_schedule_infeasible () =
  (* conservative budgets too large for the 100 ms frame *)
  let spec =
    Spec.of_list ~default_criticality:Spec.Lo
      ~wcet_lo:(Derive.wcet_of_list (ms 10) [ ("Sensor", ms 15); ("Control", ms 20) ])
      ~hi:[ ("Sensor", ms 60); ("Control", ms 60) ]
  in
  match Dual_schedule.build ~n_procs:2 ~spec (mc_net ()) with
  | Error Dual_schedule.Hi_infeasible -> ()
  | Error e ->
    Alcotest.failf "expected Hi_infeasible, got %s"
      (Format.asprintf "%a" Dual_schedule.pp_error e)
  | Ok _ -> Alcotest.fail "expected infeasibility"

let run_mc ?(frames = 3) ~exec () =
  let net = mc_net () in
  let spec = mc_spec () in
  let dual = Dual_schedule.build_exn ~n_procs:2 ~spec net in
  let config = { (Mc_engine.default_config ~frames ~n_procs:2 ()) with Mc_engine.exec } in
  Mc_engine.run net ~spec dual config

let test_no_overrun_stays_in_lo () =
  (* true durations at the optimistic budgets: never degrade *)
  let spec = mc_spec () in
  let exec = Exec_time.profile (Spec.wcet_lo spec) in
  let r = run_mc ~exec () in
  Alcotest.(check (list (pair int (testable Rat.pp Rat.equal)))) "no switches" []
    r.Mc_engine.mode_switches;
  Alcotest.(check int) "nothing dropped" 0 r.Mc_engine.dropped_lo;
  Alcotest.(check int) "no HI misses" 0 r.Mc_engine.hi_misses;
  Alcotest.(check int) "no LO misses" 0 r.Mc_engine.lo_misses;
  (* LO-mode behavior equals the zero-delay reference *)
  let net = mc_net () in
  let zd =
    Fppn.Semantics.run net (Fppn.Semantics.invocations ~horizon:(ms 300) net)
  in
  Alcotest.(check bool) "deterministic in LO mode" true
    (List.equal
       (fun (n1, h1) (n2, h2) -> n1 = n2 && List.equal V.equal h1 h2)
       (Fppn.Semantics.signature zd)
       (Mc_engine.signature r))

let test_overrun_degrades_and_protects_hi () =
  (* every HI job runs to its conservative budget: every frame degrades *)
  let spec = mc_spec () in
  let exec = Exec_time.profile (Spec.wcet_hi spec) in
  let r = run_mc ~frames:3 ~exec () in
  Alcotest.(check int) "every frame switches" 3
    (List.length r.Mc_engine.mode_switches);
  Alcotest.(check bool) "LO jobs dropped" true (r.Mc_engine.dropped_lo > 0);
  Alcotest.(check int) "HI deadlines protected" 0 r.Mc_engine.hi_misses;
  (* HI outputs still present every frame; Logger output starved in
     degraded frames *)
  let act = List.assoc "act_out" r.Mc_engine.output_history in
  Alcotest.(check int) "three control commands" 3 (List.length act);
  let log = List.assoc "log_out" r.Mc_engine.output_history in
  Alcotest.(check bool) "logger starved" true (List.length log < 3)

let test_switch_instant_is_the_budget_expiry () =
  let spec = mc_spec () in
  let exec = Exec_time.profile (Spec.wcet_hi spec) in
  let r = run_mc ~frames:1 ~exec () in
  match r.Mc_engine.mode_switches with
  | [ (0, t) ] ->
    (* Sensor starts at 0 and overruns its 15 ms budget *)
    Alcotest.(check bool) "switch at the Sensor budget expiry" true
      (Rat.equal t (ms 15))
  | l -> Alcotest.failf "expected one switch, got %d" (List.length l)

let test_partial_overrun_pattern () =
  (* jittered durations across many frames: some degrade, some do not;
     the HI guarantee must hold in every frame *)
  let exec = Exec_time.uniform ~seed:11 ~min_fraction:0.3 in
  let r = run_mc ~frames:20 ~exec () in
  let switches = List.length r.Mc_engine.mode_switches in
  Alcotest.(check bool) "some frames degraded" true (switches > 0);
  Alcotest.(check bool) "some frames clean" true (switches < 20);
  Alcotest.(check int) "HI never misses" 0 r.Mc_engine.hi_misses;
  (* consistency: dropped LO jobs only in degraded frames *)
  let degraded = List.map fst r.Mc_engine.mode_switches in
  List.iter
    (fun (rec_ : Exec_trace.record) ->
      if rec_.Exec_trace.skipped then
        Alcotest.(check bool)
          (Printf.sprintf "drop of %s only in a degraded frame" rec_.Exec_trace.label)
          true
          (List.mem rec_.Exec_trace.frame degraded))
    r.Mc_engine.trace

(* With no HI processes the MC engine must coincide with the plain
   runtime on the same schedule. *)
let test_all_lo_equals_plain_engine () =
  let net = mc_net () in
  let spec =
    Spec.of_list ~default_criticality:Spec.Lo
      ~wcet_lo:(Taskgraph.Derive.wcet_of_list (ms 30)
                  [ ("Sensor", ms 15); ("Control", ms 20) ])
      ~hi:[]
  in
  let dual = Dual_schedule.build_exn ~n_procs:2 ~spec net in
  let mc =
    Mc_engine.run net ~spec dual
      (Mc_engine.default_config ~frames:3 ~n_procs:2 ())
  in
  let plain =
    Runtime.Engine.run net dual.Dual_schedule.derived
      dual.Dual_schedule.lo_schedule
      (Runtime.Engine.default_config ~frames:3 ~n_procs:2 ())
  in
  Alcotest.(check bool) "no switches" true (mc.Mc_engine.mode_switches = []);
  Alcotest.(check bool) "identical channel histories" true
    (List.equal
       (fun (n1, h1) (n2, h2) -> n1 = n2 && List.equal V.equal h1 h2)
       (Mc_engine.signature mc)
       (Runtime.Engine.signature plain));
  (* traces coincide record for record *)
  Alcotest.(check int) "same record count"
    (List.length (Runtime.Engine.trace plain))
    (List.length mc.Mc_engine.trace)

let () =
  Alcotest.run "mixedcrit"
    [
      ( "graph-restriction",
        [
          Alcotest.test_case "paths preserved" `Quick test_induced_preserves_paths;
          Alcotest.test_case "map_wcet" `Quick test_map_wcet;
        ] );
      ( "spec",
        [
          Alcotest.test_case "accessors" `Quick test_spec_accessors;
          Alcotest.test_case "inverted budgets" `Quick test_spec_rejects_inverted_budgets;
        ] );
      ( "dual-schedule",
        [
          Alcotest.test_case "build" `Quick test_dual_schedule_build;
          Alcotest.test_case "infeasible" `Quick test_dual_schedule_infeasible;
        ] );
      ( "engine",
        [
          Alcotest.test_case "no overrun" `Quick test_no_overrun_stays_in_lo;
          Alcotest.test_case "overrun degrades" `Quick test_overrun_degrades_and_protects_hi;
          Alcotest.test_case "switch instant" `Quick test_switch_instant_is_the_budget_expiry;
          Alcotest.test_case "partial overruns" `Quick test_partial_overrun_pattern;
          Alcotest.test_case "all-LO equals plain engine" `Quick
            test_all_lo_equals_plain_engine;
        ] );
    ]
