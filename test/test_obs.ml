module Trace = Fppn_obs.Trace
module Metrics = Fppn_obs.Metrics
module Chrome = Fppn_obs.Chrome
module Json = Rt_util.Json

let qprop name ?(count = 100) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* every test starts from a clean recorder; the registry of metric
   instruments is process-global, so metric tests compare deltas *)
let with_tracing f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

(* --- spans ----------------------------------------------------------- *)

(* a random tree of nested spans, with unique names, must come back as
   one span event per node whose intervals nest exactly like the tree *)
type tree = Node of string * tree list

let gen_tree =
  QCheck2.Gen.(
    let counter = ref 0 in
    let fresh () =
      incr counter;
      Printf.sprintf "span-%d" !counter
    in
    sized_size (int_range 1 25) @@ fix (fun self n ->
        if n <= 1 then return (Node (fresh (), []))
        else
          let* width = int_range 0 3 in
          let* children = list_repeat width (self (n / (max 1 width + 1))) in
          return (Node (fresh (), children))))

let rec exec_tree (Node (name, children)) =
  Trace.with_span name (fun () -> List.iter exec_tree children)

let rec tree_edges (Node (parent, children)) =
  List.concat_map
    (fun (Node (child, _) as t) -> (parent, child) :: tree_edges t)
    children

let rec tree_size (Node (_, children)) =
  1 + List.fold_left (fun acc t -> acc + tree_size t) 0 children

let prop_spans_well_nested =
  qprop "random span trees record well-nested intervals" gen_tree (fun tree ->
      with_tracing @@ fun () ->
      exec_tree tree;
      let spans =
        List.filter_map
          (fun (e : Trace.event) ->
            match e.kind with
            | Trace.Span { dur_ns } -> Some (e.name, (e.ts_ns, dur_ns))
            | _ -> None)
          (Trace.events ())
      in
      if List.length spans <> tree_size tree then false
      else
        List.for_all
          (fun (parent, child) ->
            match (List.assoc_opt parent spans, List.assoc_opt child spans) with
            | Some (pts, pdur), Some (cts, cdur) ->
              pts <= cts && cts + cdur <= pts + pdur
            | _ -> false)
          (tree_edges tree))

let test_span_survives_exception () =
  with_tracing @@ fun () ->
  (try Trace.with_span "raises" (fun () -> failwith "boom") with _ -> ());
  match Trace.events () with
  | [ { Trace.name = "raises"; kind = Trace.Span _; _ } ] -> ()
  | evs -> Alcotest.failf "expected one span event, got %d" (List.length evs)

let test_disabled_records_nothing () =
  Trace.set_enabled false;
  Trace.reset ();
  Trace.with_span "quiet" (fun () ->
      Trace.instant "nothing";
      Trace.counter "none" 3);
  Alcotest.(check (list unit))
    "no events" []
    (List.map ignore (Trace.events ()));
  Alcotest.(check int) "no drops" 0 (Trace.dropped ());
  Alcotest.(check (list unit)) "no hotspots" [] (List.map ignore (Trace.hotspots ()))

let test_ring_overflow_keeps_latest () =
  with_tracing @@ fun () ->
  let extra = 100 in
  let id = Trace.intern "tick" in
  for _ = 1 to Trace.capacity + extra do
    Trace.instant_id id
  done;
  Alcotest.(check int) "dropped count" extra (Trace.dropped ());
  Alcotest.(check int)
    "ring holds capacity events" Trace.capacity
    (List.length (Trace.events ()))

let test_hotspots_exact () =
  with_tracing @@ fun () ->
  for _ = 1 to 5 do
    Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()))
  done;
  let find n = List.find (fun (h : Trace.hotspot) -> h.hname = n) (Trace.hotspots ()) in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer calls" 5 outer.calls;
  Alcotest.(check int) "inner calls" 5 inner.calls;
  Alcotest.(check bool)
    "outer self time excludes inner" true
    (outer.self_ns <= outer.total_ns - inner.total_ns)

(* --- metrics --------------------------------------------------------- *)

let test_histogram_buckets () =
  let h = Metrics.histogram "test.latency" ~buckets:[| 1.0; 2.0; 5.0 |] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 4.9; 5.0; 5.1; 100.0 ];
  Alcotest.(check (array int))
    "counts per bucket (upper-bound inclusive, last is overflow)"
    [| 2; 2; 2; 2 |] (Metrics.bucket_counts h);
  Alcotest.(check int) "count" 8 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 120.0 (Metrics.histogram_sum h);
  let h' = Metrics.histogram "test.latency" ~buckets:[| 1.0; 2.0; 5.0 |] in
  Metrics.observe h' 0.1;
  Alcotest.(check int)
    "re-registration returns the same histogram" 9
    (Metrics.histogram_count h);
  Alcotest.check_raises "bucket-count mismatch rejected"
    (Invalid_argument "Metrics.histogram: bucket mismatch for test.latency")
    (fun () -> ignore (Metrics.histogram "test.latency" ~buckets:[| 1.0 |]))

let test_counter_and_gauge () =
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter value" 42 (Metrics.counter_value c);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.0)) "gauge value" 2.5 (Metrics.gauge_value g)

(* deterministic counters: a fuzz campaign must flush identical metric
   totals whether phase 2 ran sequentially or on four worker domains *)
let test_metrics_jobs_invariant () =
  let config = { Fppn_fuzz.Campaign.default_config with budget = 8 } in
  let snap jobs =
    Metrics.reset ();
    Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled false)
      (fun () ->
        ignore (Fppn_fuzz.Campaign.run ~jobs config);
        Metrics.counters ())
  in
  let seq = snap 1 and par = snap 4 in
  Alcotest.(check (list (pair string int)))
    "jobs=4 flushes the same counter totals as jobs=1" seq par;
  Alcotest.(check bool)
    "campaign actually counted cases" true
    (List.mem_assoc "fuzz.cases" seq && List.assoc "fuzz.cases" seq = 8)

(* --- Chrome export --------------------------------------------------- *)

(* schema pin: the exact bytes of each event kind, relied on by
   trace-validate and external consumers (Perfetto) *)
let test_chrome_schema_pinned () =
  let events =
    [
      Chrome.process_name ~pid:1 "engine (model time)";
      Chrome.thread_name ~pid:1 ~tid:1 "M1";
      Chrome.complete ~pid:1 ~tid:1 ~name:"A[0]" ~ts_us:0.0 ~dur_us:871.0
        ~args:[ ("job", Json.Int 0) ]
        ();
      Chrome.instant ~pid:1 ~tid:1 ~name:"deadline miss: A[0]" ~ts_us:10000.0 ();
      Chrome.counter ~pid:2 ~tid:0 ~name:"engine.queue_depth" ~ts_us:1.5
        ~value:3.0;
    ]
  in
  let expected =
    "{\"traceEvents\":[\
     {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\
     \"args\":{\"name\":\"engine (model time)\"}},\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0,\
     \"args\":{\"name\":\"M1\"}},\
     {\"name\":\"A[0]\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":871,\
     \"args\":{\"job\":0}},\
     {\"name\":\"deadline miss: A[0]\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\
     \"ts\":10000,\"s\":\"t\"},\
     {\"name\":\"engine.queue_depth\",\"ph\":\"C\",\"pid\":2,\"tid\":0,\
     \"ts\":1.5,\"args\":{\"value\":3}}]}"
  in
  Alcotest.(check string) "pinned bytes" expected (Chrome.to_string events);
  match Chrome.validate (Json.parse expected) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "pinned trace does not validate: %s" msg

let test_chrome_validate_rejects () =
  let reject needle events =
    match Chrome.validate (Chrome.wrap events) with
    | Ok () -> Alcotest.failf "expected rejection (%s)" needle
    | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" needle msg)
        true (contains msg needle)
  in
  reject "without numeric dur"
    [
      Json.Obj
        [
          ("name", Json.Str "x");
          ("ph", Json.Str "X");
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("ts", Json.Float 0.0);
        ];
    ];
  reject "unknown ph"
    [
      Json.Obj
        [
          ("name", Json.Str "x");
          ("ph", Json.Str "Q");
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("ts", Json.Float 0.0);
        ];
    ];
  reject "args.name"
    [
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int 0);
          ("ts", Json.Float 0.0);
        ];
    ];
  match Chrome.validate (Json.Arr []) with
  | Ok () -> Alcotest.fail "bare array must not validate"
  | Error _ -> ()

let test_of_trace_round_trip () =
  with_tracing @@ fun () ->
  Trace.with_span "work" (fun () -> Trace.instant "mark");
  Trace.counter "depth" 2;
  let events = Chrome.of_trace (Trace.events ()) in
  (match Chrome.validate (Chrome.wrap events) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "of_trace output invalid: %s" msg);
  (* metadata (process + one lane) + three recorded events *)
  Alcotest.(check int) "event count" 5 (List.length events);
  let ts_of ev = Option.bind (Json.member "ts" ev) Json.as_float in
  Alcotest.(check bool)
    "timestamps normalised to start at 0" true
    (List.exists (fun ev -> ts_of ev = Some 0.0) events
    && List.for_all (fun ev -> match ts_of ev with Some t -> t >= 0.0 | None -> true) events)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          prop_spans_well_nested;
          Alcotest.test_case "span survives exception" `Quick
            test_span_survives_exception;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "ring overflow keeps latest" `Quick
            test_ring_overflow_keeps_latest;
          Alcotest.test_case "hotspots are exact" `Quick test_hotspots_exact;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "jobs=4 equals jobs=1" `Quick
            test_metrics_jobs_invariant;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "schema pinned" `Quick test_chrome_schema_pinned;
          Alcotest.test_case "validator rejects malformed" `Quick
            test_chrome_validate_rejects;
          Alcotest.test_case "of_trace round trip" `Quick
            test_of_trace_round_trip;
        ] );
    ]
