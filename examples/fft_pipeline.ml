(* The streaming use case of Sec. V-A: an 8-point radix-2 FFT as a
   process network (Fig. 5's generator -> 3x4 butterfly grid ->
   consumer), compiled to a 2-processor static schedule and executed
   with the measured MPPA-like runtime overhead (41 ms first frame,
   20 ms steady state).

   Run with:  dune exec examples/fft_pipeline.exe *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Fft = Fppn_apps.Fft

let ms = Rat.of_int

let () =
  let p = Fft.default_params in
  let net = Fft.network p in
  Printf.printf "FFT-%d network: %d processes (T = d = %d ms, C = %s ms)\n"
    p.Fft.n
    (Fppn.Network.n_processes net)
    p.Fft.period_ms
    (Rat.to_string p.Fft.wcet);

  (* task graph: with a single rate, it maps 1:1 to the process network *)
  let d = Taskgraph.Derive.derive_exn ~wcet:(Fft.wcet_map p) net in
  let g = d.Taskgraph.Derive.graph in
  let load = Taskgraph.Analysis.load g in
  Printf.printf "task graph: %d jobs, %d edges, load %.3f (paper: 0.93)\n"
    (Taskgraph.Graph.n_jobs g) (Taskgraph.Graph.n_edges g)
    (Rat.to_float load.Taskgraph.Analysis.value);

  (* schedule on two processors, as the paper finally mapped it *)
  let sched =
    match snd (Sched.List_scheduler.auto ~n_procs:2 g) with
    | Some a -> a.Sched.List_scheduler.schedule
    | None -> failwith "unexpected: FFT infeasible on 2 processors"
  in
  print_endline "\nstatic schedule (one 200 ms frame, M=2):";
  Rt_util.Gantt.print ~width:64 ~t_min:0.0 ~t_max:200.0
    (Sched.Static_schedule.to_gantt_rows g sched);

  (* run 8 frames with the overhead model and real signal data *)
  let frames = 8 in
  let overhead =
    { Runtime.Platform.first_frame = ms 41;
      steady_frame = ms 20;
      per_access = Rat.zero }
  in
  let feed = Fft.input_feed p ~frames in
  let config =
    { (Runtime.Engine.default_config ~frames ~n_procs:2 ()) with
      Runtime.Engine.platform = Runtime.Platform.create ~overhead ~n_procs:2 ();
      inputs = feed }
  in
  let rt = Runtime.Engine.run net d sched config in
  Format.printf "\nexecution: %a@." Runtime.Exec_trace.pp_stats
    rt.Runtime.Engine.stats;

  (* check the computed spectra against the naive DFT *)
  let spectra = List.assoc "spectrum" (Runtime.Engine.output_history rt) in
  let ok = ref 0 in
  List.iteri
    (fun i v ->
      let input =
        match feed "fft_in" (i + 1) with
        | V.List l -> Array.of_list (List.map V.to_complex l)
        | _ -> assert false
      in
      let expected = Fft.reference_dft input in
      let bins = Fft.spectrum_of_output v in
      if
        Array.for_all2
          (fun (ar, ai) (br, bi) ->
            Float.abs (ar -. br) < 1e-6 && Float.abs (ai -. bi) < 1e-6)
          bins expected
      then incr ok)
    spectra;
  Printf.printf "spectra matching the reference DFT: %d / %d\n" !ok
    (List.length spectra);

  (* show the dominant bin per frame — the test tone moves around *)
  print_endline "\nper-frame dominant frequency bin:";
  List.iteri
    (fun i v ->
      let bins = Fft.spectrum_of_output v in
      let mag (re, im) = Float.sqrt ((re *. re) +. (im *. im)) in
      let best = ref 0 in
      Array.iteri (fun k b -> if mag b > mag bins.(!best) then best := k) bins;
      Printf.printf "  frame %d: bin %d (|X| = %.2f)\n" (i + 1) !best
        (mag bins.(!best)))
    spectra
