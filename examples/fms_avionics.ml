(* The avionics case study of Sec. V-B: the Flight Management System
   subsystem of Fig. 7 (best-computed-position fusion + performance
   prediction), with random pilot configuration commands, executed over
   one 10 s hyperperiod and cross-checked against both the zero-delay
   semantics and the rate-monotonic uniprocessor prototype.

   Run with:  dune exec examples/fms_avionics.exe *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Fms = Fppn_apps.Fms
module Engine = Runtime.Engine

let () =
  let net = Fms.reduced () in
  let d = Taskgraph.Derive.derive_exn ~wcet:Fms.wcet net in
  let g = d.Taskgraph.Derive.graph in
  Printf.printf
    "FMS (reduced): %d processes, hyperperiod %s ms, %d jobs, %d edges, load %.3f\n"
    (Fppn.Network.n_processes net)
    (Rat.to_string d.Taskgraph.Derive.hyperperiod)
    (Taskgraph.Graph.n_jobs g)
    (Taskgraph.Graph.n_edges g)
    (Rat.to_float
       (Taskgraph.Analysis.load g).Taskgraph.Analysis.value);

  (* pilot commands: random sporadic traces respecting each (m,T) *)
  let horizon = d.Taskgraph.Derive.hyperperiod in
  let traces = Fms.random_config_traces ~seed:2026 ~horizon ~density:0.6 net in
  List.iter
    (fun (name, stamps) ->
      Printf.printf "  %-18s %d command(s)\n" name (List.length stamps))
    traces;
  (* exclude the horizon-edge events the simulated window cannot handle *)
  let traces =
    let _, unhandled = Engine.sporadic_assignment net d ~frames:1 traces in
    List.map
      (fun (n, stamps) ->
        (n, List.filter (fun s -> not (List.mem (n, s) unhandled)) stamps))
      traces
  in

  (* schedule and execute on 1 and 2 processors *)
  List.iter
    (fun n_procs ->
      let sched =
        match snd (Sched.List_scheduler.auto ~n_procs g) with
        | Some a -> a.Sched.List_scheduler.schedule
        | None -> failwith "FMS should be schedulable"
      in
      let config =
        { (Engine.default_config ~frames:1 ~n_procs ()) with
          Engine.sporadic = traces;
          exec = Runtime.Exec_time.uniform ~seed:n_procs ~min_fraction:0.5 }
      in
      let rt = Engine.run net d sched config in
      Format.printf "M=%d: %a@." n_procs Runtime.Exec_trace.pp_stats
        rt.Engine.stats)
    [ 1; 2 ];

  (* determinism: FPPN runtime vs zero-delay vs RM uniprocessor *)
  let sched =
    match snd (Sched.List_scheduler.auto ~n_procs:2 g) with
    | Some a -> a.Sched.List_scheduler.schedule
    | None -> assert false
  in
  let rt =
    Engine.run net d sched
      { (Engine.default_config ~frames:1 ~n_procs:2 ()) with
        Engine.sporadic = traces }
  in
  let zd =
    Fppn.Semantics.run net
      (Fppn.Semantics.invocations ~sporadic:traces ~horizon net)
  in
  let up =
    Runtime.Uniproc_fp.run net
      { (Runtime.Uniproc_fp.default_config ~wcet:Fms.wcet ~horizon) with
        Runtime.Uniproc_fp.sporadic = traces }
  in
  let eq a b =
    List.equal
      (fun (n1, h1) (n2, h2) -> n1 = n2 && List.equal V.equal h1 h2)
      a b
  in
  Printf.printf "FPPN runtime = zero-delay reference: %b\n"
    (eq (Engine.signature rt) (Fppn.Semantics.signature zd));
  Printf.printf "RM uniprocessor prototype = zero-delay reference: %b\n"
    (eq (Runtime.Uniproc_fp.signature up) (Fppn.Semantics.signature zd));

  (* a peek at the flight outputs *)
  let show name n =
    match List.assoc_opt name (Engine.output_history rt) with
    | Some history ->
      let first = List.filteri (fun i _ -> i < n) history in
      Printf.printf "  %-12s (first %d of %d): %s\n" name n
        (List.length history)
        (String.concat ", "
           (List.map
              (fun v ->
                match v with V.Float f -> Printf.sprintf "%.3f" f | v -> V.to_string v)
              first))
    | None -> ()
  in
  print_endline "flight outputs:";
  show "bcp_out" 5;
  show "lowfreq_out" 2;
  show "perf_out" 5
