(* A guided tour of the sporadic-server machinery of Secs. III-A and IV
   (Fig. 2): how real sporadic events map onto periodic server-job
   slots, what the deadline correction d_p' = d_p - T_u does, and how
   the window boundary rule depends on the functional priority between
   the sporadic process and its user.

   Run with:  dune exec examples/sporadic_server.exe *)

module Rat = Rt_util.Rat
module V = Fppn.Value
module Event = Fppn.Event
module Process = Fppn.Process
module Network = Fppn.Network
module Derive = Taskgraph.Derive
module Engine = Runtime.Engine

let ms = Rat.of_int

(* A sporadic Config (burst 2, min period 500 ms, deadline 700 ms)
   configures a periodic Worker (200 ms).  [config_first] selects the
   functional priority direction, and with it the boundary rule. *)
let network ~config_first =
  let b = Network.Builder.create "server-demo" in
  Network.Builder.add_process b
    (Process.make ~name:"Worker"
       ~event:(Event.periodic ~period:(ms 200) ~deadline:(ms 200) ())
       (Process.Native
          (fun ctx ->
            let cfg = ctx.Process.read "cfg" in
            ctx.Process.write "out" (V.Pair (V.Int ctx.Process.job_index, cfg)))));
  Network.Builder.add_process b
    (Process.make ~name:"Config"
       ~event:(Event.sporadic ~burst:2 ~min_period:(ms 500) ~deadline:(ms 700) ())
       (Process.Native
          (fun ctx -> ctx.Process.write "cfg" (V.Int ctx.Process.job_index))));
  Network.Builder.add_channel b ~kind:Fppn.Channel.Blackboard ~writer:"Config"
    ~reader:"Worker" "cfg";
  if config_first then Network.Builder.add_priority b "Config" "Worker"
  else Network.Builder.add_priority b "Worker" "Config";
  Network.Builder.add_output b ~owner:"Worker" "out";
  Network.Builder.finish_exn b

let describe ~config_first =
  let net = network ~config_first in
  let d = Derive.derive_exn ~wcet:(Derive.const_wcet (ms 10)) net in
  let g = d.Derive.graph in
  Printf.printf "\n=== functional priority: %s ===\n"
    (if config_first then "Config -> Worker (sporadic above its user)"
     else "Worker -> Config (user above the sporadic)");
  (match d.Derive.servers with
  | [ s ] ->
    Printf.printf
      "server transformation: T' = %s ms (user period), corrected deadline d_p' = \
       %s ms (d_p - T' = 700 - 200)\n"
      (Rat.to_string s.Derive.server_period)
      (Rat.to_string s.Derive.server_relative_deadline);
    Printf.printf "window boundary rule: %s\n"
      (if s.Derive.boundary_closed_right then
         "(a, b] — an event exactly at b joins the subset at b"
       else "[a, b) — an event exactly at b waits for the next subset")
  | _ -> assert false);
  Printf.printf "task graph over H = %s ms: %d jobs (%d server slots)\n"
    (Rat.to_string d.Derive.hyperperiod)
    (Taskgraph.Graph.n_jobs g)
    (Array.fold_left
       (fun acc j -> if j.Taskgraph.Job.is_server then acc + 1 else acc)
       0 (Taskgraph.Graph.jobs g));

  (* one event strictly inside a window, one exactly on a boundary *)
  let events = [ ms 130; ms 800 ] in
  Printf.printf "real Config events at: %s ms\n"
    (String.concat ", " (List.map Rat.to_string events));
  let frames = 6 in
  let assigned, unhandled =
    Engine.sporadic_assignment net d ~frames [ ("Config", events) ]
  in
  Hashtbl.iter
    (fun (job, frame) stamp ->
      let j = Taskgraph.Graph.job g job in
      Printf.printf
        "  event @%s ms -> slot %s of frame %d (slot boundary b = %s ms)\n"
        (Rat.to_string stamp)
        (Taskgraph.Job.label j)
        frame
        (Rat.to_string
           (Rat.add
              (Rat.mul d.Derive.hyperperiod (Rat.of_int frame))
              j.Taskgraph.Job.arrival)))
    assigned;
  List.iter
    (fun (n, s) ->
      Printf.printf "  event @%s ms of %s: beyond the simulated horizon\n"
        (Rat.to_string s) n)
    unhandled;

  (* execute and show what the Worker observed *)
  let sched =
    match snd (Sched.List_scheduler.auto ~n_procs:1 g) with
    | Some a -> a.Sched.List_scheduler.schedule
    | None -> assert false
  in
  let rt =
    Engine.run net d sched
      { (Engine.default_config ~frames ~n_procs:1 ()) with
        Engine.sporadic = [ ("Config", events) ] }
  in
  print_endline "Worker observations (job index, configuration seen):";
  List.iter
    (fun v ->
      match v with
      | V.Pair (V.Int k, cfg) -> Printf.printf "  Worker[%d] saw cfg = %s\n" k (V.to_string cfg)
      | _ -> ())
    (List.assoc "out" (Engine.output_history rt));
  Format.printf "%a@." Runtime.Exec_trace.pp_stats rt.Engine.stats

let () =
  print_endline
    "Sporadic processes are scheduled through periodic servers (Fig. 2):\n\
     each server slot either carries a real event or is marked 'false'\n\
     and skipped at run time.";
  describe ~config_first:true;
  describe ~config_first:false;
  print_endline
    "\nNote how the event at exactly 800 ms (a window boundary) is handled\n\
     by the subset at 800 ms when Config has priority over Worker, but is\n\
     postponed to the next subset when Worker has priority (Sec. IV)."
